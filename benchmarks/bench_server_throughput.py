"""SessionPool server throughput: many documents, one process.

The server claim (DESIGN.md Section 9): hundreds of independent
incremental sessions can live behind one asyncio process, with edits
draining in fair budgeted slices, and one document's fault never
touching its siblings.  Two scenarios:

1. **Throughput/latency sweep.** For each session count, start a real
   TCP server, open one vec-reduce document per session, and run one
   client connection per document firing EDITS edits each (eager mode
   with a deliberately small slice budget, so an edit acks only once
   its drain completes -- possibly after yielding the loop to siblings
   mid-drain; the honest edit-to-ack number).  Reported per session count: sustained edits/sec
   across the whole pool and the p50/p99 edit-to-ack latency, plus the
   scheduler's rotation count (proof the fairness ring actually cycled
   rather than one document draining in a monopoly).  Every document is
   oracle-checked against ``tree_sum`` of its current data at the end.

2. **Fault isolation at full load.** At the largest session count, one
   document carries a persistently refiring planted fault
   (``repeat=True``) while every document is edited and read.  The
   victim must recover (rollback escalating to rebuild), every sibling
   must stay oracle-consistent, and the pool must report zero failed
   documents.

``REPRO_SERVER_SESSIONS`` overrides the sweep (e.g. "8 16" for a CI
smoke run); the >=100-sessions assertion only applies at the defaults.
"""

import asyncio
import os
import random
import statistics
import time

from repro.api import values_close
from repro.obs.faults import FaultInjector
from repro.server import Client, SessionPool, serve

from _util import emit, once

_SESSIONS_ENV = os.environ.get("REPRO_SERVER_SESSIONS")
SESSIONS = [int(s) for s in (_SESSIONS_ENV or "10 50 100 200").split()]
_SMOKE = _SESSIONS_ENV is not None

CELLS = 64  # vector length per document (deep enough to outrun a slice)
EDITS = 10  # edits per document per sweep round


def _expected(pool, name):
    session = pool.docs[name].session
    return session.app.reference(session.app.handle_data(session.input_handle))


async def _sweep(n_sessions: int) -> dict:
    """One full sweep at ``n_sessions``: open, hammer, verify, tear down."""
    pool = SessionPool(mode="eager", slice_budget=4)
    server = await serve(pool)
    host, port = server.sockets[0].getsockname()[:2]

    docs = [f"doc{i}" for i in range(n_sessions)]
    for i, name in enumerate(docs):
        pool.open(name, app="vec-reduce", n=CELLS, seed=i)

    latencies = []

    async def hammer(idx: int, name: str):
        client = await Client.connect(host, port)
        rng = random.Random(7000 + idx)
        for _ in range(EDITS):
            cell = f"cell:{rng.randrange(CELLS)}"
            t0 = time.perf_counter()
            await client.edit(name, cell, 0.5 + rng.random())
            latencies.append(time.perf_counter() - t0)
        value = await client.get(name, "out")
        await client.close()
        return name, value

    started = time.perf_counter()
    results = await asyncio.gather(
        *(hammer(i, name) for i, name in enumerate(docs))
    )
    elapsed = time.perf_counter() - started

    for name, value in results:
        assert values_close(value, _expected(pool, name)), name

    rotations = pool.scheduler.stats()["rotations"]
    server.close()
    await server.wait_closed()
    await pool.stop()

    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    return {
        "sessions": n_sessions,
        "edits": len(latencies),
        "edits_per_s": len(latencies) / elapsed,
        "p50_ms": p50 * 1e3,
        "p99_ms": p99 * 1e3,
        "rotations": rotations,
    }


async def _fault_isolation(n_sessions: int) -> dict:
    """Full pool load with one persistently faulting document."""
    pool = SessionPool(
        mode="lazy", slice_budget=64, on_error="rollback", max_rollbacks=2
    )
    docs = [f"doc{i}" for i in range(n_sessions)]
    for i, name in enumerate(docs):
        pool.open(name, app="vec-reduce", n=CELLS, seed=i)

    victim = pool.docs[docs[0]]
    victim.session.engine.attach_hook(
        FaultInjector("read", at=0, during="propagate", repeat=True)
    )

    rng = random.Random(42)
    for name in docs:
        for _ in range(3):
            await pool.edit(name, f"cell:{rng.randrange(CELLS)}", rng.random())
    for name in docs:
        got = await pool.demand(name)
        assert values_close(got["value"], _expected(pool, name)), name

    snap = pool.stats()
    result = {
        "sessions": n_sessions,
        "victim_rollbacks": victim.rollbacks,
        "victim_rebuilds": victim.rebuilds,
        "victim_failed": victim.failed,
        "pool_failed": snap["failed"],
        "sibling_recoveries": sum(
            pool.docs[n].rollbacks + pool.docs[n].rebuilds for n in docs[1:]
        ),
    }
    await pool.stop()
    return result


def test_server_throughput(benchmark, capsys):
    def run():
        async def main():
            rows = [await _sweep(n) for n in SESSIONS]
            isolation = await _fault_isolation(SESSIONS[-1])
            return rows, isolation

        return asyncio.run(main())

    rows, isolation = once(benchmark, run)

    header = (
        f"{'sessions':>8} {'edits':>7} {'edits/s':>10} "
        f"{'p50 (ms)':>10} {'p99 (ms)':>10} {'rotations':>10}"
    )
    lines = [
        f"SessionPool server: eager edit-to-ack over TCP, "
        f"vec-reduce n={CELLS}, {EDITS} edits/doc",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['sessions']:>8} {row['edits']:>7} "
            f"{row['edits_per_s']:>10.0f} {row['p50_ms']:>10.3f} "
            f"{row['p99_ms']:>10.3f} {row['rotations']:>10}"
        )
    lines += [
        "",
        f"fault isolation at {isolation['sessions']} sessions "
        f"(one document with a persistent planted fault):",
        f"  victim: rollbacks={isolation['victim_rollbacks']} "
        f"rebuilds={isolation['victim_rebuilds']} "
        f"failed={isolation['victim_failed']}",
        f"  pool: failed_docs={isolation['pool_failed']} "
        f"sibling_recoveries={isolation['sibling_recoveries']} "
        f"(all siblings oracle-consistent)",
    ]
    text = "\n".join(lines)

    if not _SMOKE:
        biggest = rows[-1]
        assert biggest["sessions"] >= 100, "sweep must reach 100 sessions"
        assert biggest["edits"] == biggest["sessions"] * EDITS
        assert biggest["rotations"] > 0, "fairness ring never rotated"
    assert isolation["victim_rebuilds"] >= 1
    assert not isolation["victim_failed"]
    assert isolation["pool_failed"] == 0
    assert isolation["sibling_recoveries"] == 0

    emit(capsys, "Server throughput", text)
