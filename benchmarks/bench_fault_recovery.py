"""Cost of the failure-recovery paths vs. trace size (DESIGN.md Sec. 7).

Three numbers per input size, on msort with one staged edit:

* **propagate** -- the healthy baseline: one change-propagation pass.
* **rollback** -- a planted fault aborts the pass; the session undoes the
  edit, propagates back to the last-good state, and re-stages the edit
  (``Session.propagate(on_error="rollback")``).  Cost should track the
  baseline (it is propagation work plus the undo bookkeeping), not the
  initial-run cost.
* **rebuild** -- a *persistent* fault forces the from-scratch fallback
  (``on_error="rebuild"``): marshal the current data into a fresh engine
  and re-run.  Cost should track the initial run, i.e. grow with n much
  faster than rollback -- which is exactly why rollback is worth having.

``REPRO_FAULT_SIZES`` overrides the input sizes (e.g. "64" for a CI smoke
run); the rollback-beats-rebuild assertion only fires at the defaults.
"""

import os
import random

from repro.api import Session
from repro.apps import REGISTRY
from repro.bench import format_series
from repro.obs.faults import FaultInjector

from _util import emit, once

_SIZES_ENV = os.environ.get("REPRO_FAULT_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "64 128 256").split()]
_SMOKE = _SIZES_ENV is not None

ATTEMPTS = 5


def _staged_session(n, *, hook=None, seed=7):
    """Fresh msort session with one random edit staged but unpropagated."""
    app = REGISTRY["msort"]
    rng = random.Random(seed)
    session = Session(app, hook=hook)
    session.run(data=app.make_data(n, rng))
    app.apply_change(session.input_handle, rng, 0)
    return app, session


def _propagate_time(n):
    _, session = _staged_session(n)
    return session.propagate().seconds


def _rollback_time(n):
    """Seconds for the rollback recovery itself (undo + recovery
    propagation + re-stage), triggered by a one-shot fault."""
    app, session = _staged_session(n, hook=FaultInjector("write", at=0))
    stats = session.propagate(on_error="rollback")
    assert stats.path == "rollback", "fault did not fire"
    # Converge afterwards (untimed) and sanity-check the recovery.
    session.propagate()
    assert app.readback(session.output) == app.reference(
        app.handle_data(session.input_handle)
    )
    return stats.seconds


def _rebuild_time(n):
    """Seconds for the from-scratch fallback under a persistent fault."""
    app, session = _staged_session(
        n, hook=FaultInjector("write", at=0, repeat=True)
    )
    stats = session.propagate(on_error="rebuild")
    assert stats.path == "rebuild", "fault did not fire"
    assert app.readback(session.output) == app.reference(
        app.handle_data(session.input_handle)
    )
    return stats.seconds


def test_fault_recovery_msort(benchmark, capsys):
    def run():
        propagate = [
            min(_propagate_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        rollback = [
            min(_rollback_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        rebuild = [
            min(_rebuild_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        return propagate, rollback, rebuild

    propagate, rollback, rebuild = once(benchmark, run)

    series = {
        "propagate (s)": propagate,
        "rollback recovery (s)": rollback,
        "rebuild fallback (s)": rebuild,
        "rebuild / rollback": [b / r for r, b in zip(rollback, rebuild)],
    }
    text = format_series(
        "Fault recovery: msort, one staged edit, planted write fault",
        SIZES,
        series,
    )

    if not _SMOKE:
        at256 = SIZES.index(256)
        assert rollback[at256] < rebuild[at256], (
            f"rollback ({rollback[at256]:.4f}s) should beat the "
            f"from-scratch rebuild ({rebuild[at256]:.4f}s) at n=256"
        )

    emit(capsys, "Fault recovery", text)
