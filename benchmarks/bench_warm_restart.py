"""Warm restart vs cold start (DESIGN.md Section 10).

A served document that survives a process restart can come back two
ways: **cold** -- re-run the program from scratch on its current data,
paying the full initial-run cost again -- or **warm** -- decode the last
checkpoint back into a live trace and change-propagate only what
happened since.  The entire point of checkpointing the dependence graph
(rather than just the input data) is that the warm path replaces a
from-scratch re-execution with a snapshot decode plus an incremental
propagation, so it should win by roughly the initial-run/propagate gap
the rest of the suite measures.

Five numbers per app:

* **initial-run**   -- from-scratch execution (what a cold open pays).
* **snapshot-save** -- encode + CRC + atomic write of the checkpoint.
* **restore**       -- decode the checkpoint into a servable session.
* **cold-restart**  -- initial run on current data, then one edit
  propagated: the no-durability restart experience end to end.
* **warm-restart**  -- restore, then the same edit propagated: the
  checkpointed restart experience end to end.

``REPRO_WARM_SIZES`` overrides the msort input sizes and shrinks the
raytracer (CI smoke runs set it to a small value); the warm-beats-cold
assertion only fires at the defaults.
"""

import os
import random
import time

from repro.api import Session, values_close
from repro.apps import REGISTRY

from _util import bench_repeat, emit, format_spread_rows, once, spread

_SIZES_ENV = os.environ.get("REPRO_WARM_SIZES")
MSORT_SIZES = [int(s) for s in (_SIZES_ENV or "256 512").split()]
RAY_SIZE = 4 if _SIZES_ENV is not None else 8
_SMOKE = _SIZES_ENV is not None

ATTEMPTS = bench_repeat()


def _settled_session(app, n, *, changes=2, seed=7):
    """A session that has lived a little: run, then ``changes`` edits."""
    rng = random.Random(seed)
    session = Session(app)
    session.run(data=app.make_data(n, rng))
    for step in range(changes):
        app.apply_change(session.input_handle, rng, step)
        session.propagate()
    return session


def _measure(app, n, tmp_path):
    session = _settled_session(app, n)
    data = app.handle_data(session.input_handle)
    snap = os.path.join(str(tmp_path), f"{app.name}.{n}.snap")
    rows = {k: [] for k in (
        "initial-run", "snapshot-save", "restore", "cold-restart",
        "warm-restart",
    )}

    for attempt in range(ATTEMPTS):
        t0 = time.perf_counter()
        cold = Session(app)
        cold.run(data=data)
        rows["initial-run"].append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        session.snapshot(snap)
        rows["snapshot-save"].append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        warm = Session.restore(snap, app)
        rows["restore"].append(time.perf_counter() - t0)

        # The same post-restart edit through each path.  Both sessions
        # hold identical data, so the propagation work is comparable;
        # the restart cost difference is run-from-scratch vs decode.
        step = 100 + attempt
        app.apply_change(cold.input_handle, random.Random(step), step)
        t0 = time.perf_counter()
        cold.propagate()
        rows["cold-restart"].append(
            rows["initial-run"][-1] + (time.perf_counter() - t0)
        )

        app.apply_change(warm.input_handle, random.Random(step), step)
        t0 = time.perf_counter()
        warm.propagate()
        rows["warm-restart"].append(
            rows["restore"][-1] + (time.perf_counter() - t0)
        )

        assert values_close(
            app.readback(warm.output),
            app.reference(app.handle_data(warm.input_handle)),
        )
    return rows


def test_warm_restart(benchmark, capsys, tmp_path):
    sections = []
    checks = []
    for app_name, sizes in [("msort", MSORT_SIZES), ("raytracer", [RAY_SIZE])]:
        app = REGISTRY[app_name]
        for n in sizes:
            rows = _measure(app, n, tmp_path)
            sections.append(
                format_spread_rows(f"{app_name} n={n}", rows)
            )
            checks.append((app_name, n, rows))

    # Representative op under the benchmark timer: one warm restore of
    # the largest msort checkpoint.
    app = REGISTRY["msort"]
    session = _settled_session(app, MSORT_SIZES[-1])
    snap = os.path.join(str(tmp_path), "bench.snap")
    session.snapshot(snap)
    once(benchmark, lambda: Session.restore(snap, app))

    emit(capsys, "warm restart", "\n\n".join(sections))

    if not _SMOKE:
        for app_name, n, rows in checks:
            cold = spread(rows["cold-restart"])["min"]
            warm = spread(rows["warm-restart"])["min"]
            assert warm < cold, (
                f"{app_name} n={n}: warm restart ({warm:.6f}s) did not "
                f"beat cold start ({cold:.6f}s)"
            )
