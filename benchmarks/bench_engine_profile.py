"""Engine hot-path profile of msort on every backend, as a checked-in
artifact.

This runs the ``python -m repro profile`` harness
(:func:`repro.obs.profile.profile_app`) for the merge-sort benchmark on
each registered backend and saves the reports side by side.  The
per-phase meter columns of the reports must be identical (the backends
drive the same engine primitive sequence); the wall-clock columns are
where the dispatch cost shows.  The order /
queue / pool statistics document the engine data-structure behaviour --
relabel counts, queue rekeys, free-list reuse -- at a realistic size.

``REPRO_PROFILE_SIZE`` overrides the input size (CI smoke uses 32).
"""

import os

from repro.backends import BACKENDS
from repro.obs.profile import profile_app

from _util import emit, once

N = int(os.environ.get("REPRO_PROFILE_SIZE") or 64)
CHANGES = 8


def test_engine_profile_msort(benchmark, capsys):
    def run():
        return [
            profile_app(
                "msort", n=N, changes=CHANGES, seed=1, backend=backend, top=8
            )
            for backend in BACKENDS
        ]

    reports = once(benchmark, run)

    interp = reports[0]
    # Meter-exact backend parity, phase by phase.
    for other in reports[1:]:
        for pi, pc in zip(interp.phases, other.phases):
            assert pi.counters == pc.counters, (
                f"phase {pi.name!r}: backend meter deltas diverge"
            )

    text = "\n\n".join(report.format() for report in reports)
    emit(capsys, "Engine profile", text)
