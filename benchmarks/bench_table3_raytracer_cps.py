"""Table 3: comparison of the ray tracer with the CPS baseline.

The paper compares its type-directed ray tracer against the CPS (DeltaML)
version and finds the type-directed one roughly twice as fast in both
complete runs and propagation.  Our CPS substitute is the compiler's
``coarse`` mode (with the Section 3.4 optimizer disabled): every changeable
result gets an extra modifiable indirection, emulating CPS's coarse
continuation-based dependency tracking (DESIGN.md Section 2).
"""

import time

import pytest

from repro.api import Session
from repro.apps import REGISTRY
from repro.apps.raytracer import GROUPS, SceneInput, readback_image, standard_scene

from _util import emit, once

IMAGE_SIZE = 14
TOGGLES = ["A", "C", "E", "G"]


def _measure(program, scene):
    sa = Session(program)
    handle = SceneInput(sa.engine, scene)
    t0 = time.perf_counter()
    out = sa.run(handle.value)
    run_time = time.perf_counter() - t0
    mods = sa.engine.meter.mods_created
    trace = sa.engine.trace_size()
    props = []
    for group in TOGGLES:
        handle.toggle(group)
        t0 = time.perf_counter()
        sa.propagate()
        props.append(time.perf_counter() - t0)
    return run_time, props, mods, trace


def test_table3_raytracer_vs_cps(benchmark, capsys):
    app = REGISTRY["raytracer"]

    def run():
        scene = standard_scene(IMAGE_SIZE)
        typed = _measure(app.compiled(), scene)
        cps = _measure(
            app.compiled(optimize_flag=False, coarse=True), scene
        )
        return typed, cps

    (
        (typed_run, typed_props, typed_mods, typed_trace),
        (cps_run, cps_props, cps_mods, cps_trace),
    ) = once(benchmark, run)

    header = (
        f"{'Toggle':<8} {'Type-Dir. Prop (s)':>19} {'CPS Prop (s)':>13} "
        f"{'Speedup vs CPS':>15}"
    )
    lines = [
        "Table 3: ray tracer vs the CPS (coarse-tracking) baseline",
        f"complete run: Type-Dir. {typed_run:.3f}s   CPS {cps_run:.3f}s   "
        f"speedup {cps_run / typed_run:.2f}x",
        f"modifiables:  Type-Dir. {typed_mods}   CPS {cps_mods}   "
        f"trace size: {typed_trace} vs {cps_trace}",
        header,
        "-" * len(header),
    ]
    for group, tp, cp in zip(TOGGLES, typed_props, cps_props):
        ratio = cp / tp if tp > 0 else float("inf")
        lines.append(f"{group:<8} {tp:>19.4f} {cp:>13.4f} {ratio:>14.2f}x")
    text = "\n".join(lines)

    # Paper shape: coarse (CPS-style) tracking pays for extra modifiables
    # and trace.  Wall times appear in the report; the assertions use the
    # deterministic counters (the run-time gap at 14x14 is within machine
    # noise on a loaded box).
    # The indirection effect on the ray tracer is mostly in modifiable
    # counts (trace size is dominated by the shading reads); the list
    # benchmarks of Figure 9 show the space effect much more strongly.
    assert cps_mods > typed_mods * 1.05
    assert cps_trace >= typed_trace

    emit(capsys, "Table 3", text)
