"""Figure 10: propagation time for vec-reduce including GC time.

The paper measures change propagation with garbage-collection time
included (Section 4.10) and finds it stays small and grows slowly.  Our
collector is CPython's reference counting plus the cyclic ``gc`` module;
we report propagation time with the cyclic collector enabled vs disabled,
and the collections it performs.
"""

import gc

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_series

from _util import emit, once

SIZES = [500, 1000, 2000, 4000]


def test_fig10_vec_reduce_gc(benchmark, capsys):
    app = REGISTRY["vec-reduce"]

    def run():
        with_gc = []
        without_gc = []
        for n in SIZES:
            without_gc.append(
                measure_app(app, n, prop_samples=12, seed=4, gc_enabled=False)
            )
            gc.collect()
            counts_before = gc.get_count()
            with_gc.append(
                measure_app(app, n, prop_samples=12, seed=4, gc_enabled=True)
            )
        return with_gc, without_gc

    with_gc, without_gc = once(benchmark, run)

    series = {
        "prop, GC excluded (s)": [r.avg_prop for r in without_gc],
        "prop, GC included (s)": [r.avg_prop for r in with_gc],
    }
    text = format_series(
        "Figure 10: vec-reduce propagation time, with and without GC",
        SIZES,
        series,
        fmt=lambda v: f"{v:.2e}",
    )

    # Shape claim: GC-inclusive propagation stays the same order of
    # magnitude as GC-exclusive propagation (GC cost of propagation is
    # modest, paper Section 4.10).
    for incl, excl in zip(series["prop, GC included (s)"], series["prop, GC excluded (s)"]):
        assert incl < excl * 10

    emit(capsys, "Figure 10", text)
