"""Figure 9: comparison with previous work, and the optimizer ablation.

Time and memory for the complete run and for change propagation on the
common list benchmarks (map, filter, qsort, msort), for:

* **Type-Directed** -- our compiler, all phases on (the paper's system);
* **Unopt.** -- the Section 3.4 optimizer disabled (the paper's ablation);
* **CPS** -- coarse-tracking emulation (extra modifiable per changeable
  result, optimizer off), standing in for DeltaML (DESIGN.md Section 2);
* **AFL** -- hand-written self-adjusting programs against the runtime API
  (repro.bench.handwritten), standing in for the hand-tuned AFL library.

All numbers are normalized to Type-Directed = 1.0, as in the paper.

Shape claims: Unopt. and CPS are slower than Type-Directed (the paper
reports the optimizations buy up to 60%, and CPS is ~2x slower); AFL hand
code is at least competitive with (usually faster than) the compiled code.
"""

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import measure_handwritten
from repro.bench.handwritten import HANDWRITTEN
from repro.bench.report import format_normalized

from _util import emit, once

SIZES = {"map": 1500, "filter": 1500, "qsort": 300, "msort": 200}
BENCHES = list(SIZES)


def test_fig9_comparison(benchmark, capsys):
    def run():
        data = {
            "run": {"Type-Directed": [], "Unopt.": [], "CPS": [], "AFL": []},
            "prop": {"Type-Directed": [], "Unopt.": [], "CPS": [], "AFL": []},
            "trace": {"Type-Directed": [], "Unopt.": [], "CPS": [], "AFL": []},
        }
        for name in BENCHES:
            n = SIZES[name]
            app = REGISTRY[name]
            variants = {
                "Type-Directed": measure_app(app, n, prop_samples=8, seed=3),
                "Unopt.": measure_app(
                    app, n, prop_samples=8, seed=3, optimize_flag=False
                ),
                "CPS": measure_app(
                    app, n, prop_samples=8, seed=3,
                    optimize_flag=False, coarse=True,
                ),
                "AFL": measure_handwritten(
                    "AFL", HANDWRITTEN[name], app, n, prop_samples=8, seed=3
                ),
            }
            for label, row in variants.items():
                data["run"][label].append(row.sa_run)
                data["prop"][label].append(row.avg_prop)
                data["trace"][label].append(row.trace_size)
        return data

    data = once(benchmark, run)

    sections = []
    for metric, title in (
        ("run", "Time for complete run"),
        ("prop", "Time for change propagation"),
        ("trace", "Trace size (memory) after the complete run"),
    ):
        sections.append(
            format_normalized(
                f"Figure 9: {title}", BENCHES, data[metric], "Type-Directed"
            )
        )
    text = "\n\n".join(sections)

    # Shape claims, averaged across benchmarks.  Wall times appear in the
    # report; assertions use the deterministic trace-size counters so the
    # benchmark is robust to machine noise.
    def avg_ratio(metric, label):
        pairs = zip(data[metric][label], data[metric]["Type-Directed"])
        ratios = [a / b for a, b in pairs if b > 0]
        return sum(ratios) / len(ratios)

    assert avg_ratio("trace", "Unopt.") > 1.02   # the optimizer removes trace
    assert avg_ratio("trace", "CPS") > avg_ratio("trace", "Unopt.")  # coarser
    assert avg_ratio("trace", "CPS") > 1.2
    assert avg_ratio("trace", "AFL") < 1.0       # hand code is leaner
    assert avg_ratio("run", "AFL") < 1.0         # and faster (native Python)

    emit(capsys, "Figure 9", text)
