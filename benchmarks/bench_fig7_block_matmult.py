"""Figure 7: blocked matrix multiplication across sizes and block sizes.

Four series, as in the paper: complete-run time, propagation time,
propagation speedup, and memory (we report live trace size, the quantity
the paper's space bounds speak about) -- for a sweep of matrix sizes and
block sizes.

Shape claims (paper Section 4.6): all configurations share the O(n^3)
complete-run shape; larger blocks mean lower overhead (fewer modifiables)
but smaller speedups (changing one element recomputes a whole block);
smaller blocks use more memory.
"""

import pytest

from repro.apps import get_app
from repro.api import measure_app
from repro.bench import format_series

from _util import emit, once

SIZES = [16, 32]
BLOCKS = [4, 8, 16]


def test_fig7_block_matmult(benchmark, capsys):
    def run():
        results = {}
        for block in BLOCKS:
            app = get_app("block-mat-mult", block=block)
            results[block] = [
                measure_app(app, n, prop_samples=4, seed=2)
                for n in SIZES
                if n >= block
            ]
        return results

    results = once(benchmark, run)

    lines = ["Figure 7: blocked matrix multiply (n x n, m x m blocks)"]
    header = (
        f"{'n':>6} {'block':>6} {'run (s)':>10} {'prop (s)':>10} "
        f"{'speedup':>9} {'trace size':>11} {'mods':>8}"
    )
    lines += [header, "-" * len(header)]
    for block, rows in results.items():
        for r in rows:
            lines.append(
                f"{r.n:>6} {block:>6} {r.sa_run:>10.3f} {r.avg_prop:>10.4f} "
                f"{r.speedup:>9.1f} {r.trace_size:>11} {r.mods_created:>8}"
            )
    text = "\n".join(lines)

    # At the common size (n=32): smaller blocks -> more memory (trace),
    # bigger speedup; larger blocks -> fewer modifiables.
    at32 = {
        block: next(r for r in rows if r.n == 32)
        for block, rows in results.items()
        if any(r.n == 32 for r in rows)
    }
    assert at32[4].trace_size > at32[8].trace_size > at32[16].trace_size
    assert at32[4].mods_created > at32[16].mods_created
    assert at32[4].speedup > at32[16].speedup

    emit(capsys, "Figure 7", text)
