"""Table 2: summary of ray tracer timings.

For each surface group A..G we toggle the group to diffuse and to mirror
(superscripts D and M in the paper) and report: the fraction of output
pixels changed, conventional render time, self-adjusting render time,
propagation time, overhead, and speedup.

Shape claims: speedup is inversely related to the fraction of pixels
changed; mirror toggles (which spawn reflection rays inside the re-executed
reads) are consistently more expensive than diffuse toggles; the smallest
changes see the largest speedups.
"""

import time

import pytest

from repro.api import Session
from repro.apps import REGISTRY
from repro.apps.raytracer import (
    GROUPS,
    SceneInput,
    diffuse_surface,
    image_diff_fraction,
    mirror_surface,
    readback_image,
    standard_scene,
)

from _util import emit, once

IMAGE_SIZE = 20  # paper: 512x512; scaled for the interpreted substrate


def test_table2_raytracer(benchmark, capsys):
    app = REGISTRY["raytracer"]
    program = app.compiled()

    def run():
        scene = standard_scene(IMAGE_SIZE)

        conv = program.conventional_instance()
        conv_input = SceneInput(None, scene).value
        t0 = time.perf_counter()
        conv.apply(conv_input)
        conv_time = time.perf_counter() - t0

        sa = Session(program)
        handle = SceneInput(sa.engine, scene)
        t0 = time.perf_counter()
        out = sa.run(handle.value)
        sa_time = time.perf_counter() - t0

        rows = []
        for group in GROUPS:
            # Toggle away from the current state first so every measured
            # propagation responds to a real change (paper: each set is
            # changed to diffuse and to mirror).
            currently_mirror = handle.data().surfaces[group][5] > 0.0
            kinds = ("D", "M") if currently_mirror else ("M", "D")
            measured = {}
            for kind in kinds:
                make = diffuse_surface if kind == "D" else mirror_surface
                base = readback_image(out)
                color = handle.data().surfaces[group][:3]
                handle.set_group(group, make(color))
                t0 = time.perf_counter()
                sa.propagate()
                prop = time.perf_counter() - t0
                frac = image_diff_fraction(base, readback_image(out))
                measured[kind] = (frac, prop)
            for kind in ("D", "M"):
                frac, prop = measured[kind]
                rows.append((f"{group}{kind}", frac, conv_time, sa_time, prop))
        return rows

    rows = once(benchmark, run)

    header = (
        f"{'Surface':<8} {'Image Diff (%)':>14} {'Conv. Run (s)':>14} "
        f"{'Self-Adj. Run (s)':>18} {'Avg. Prop. (s)':>15} {'Overhead':>9} {'Speedup':>8}"
    )
    lines = ["Table 2: summary of ray tracer timings", header, "-" * len(header)]
    for name, frac, conv_time, sa_time, prop in rows:
        overhead = sa_time / conv_time
        speedup = conv_time / prop if prop > 0 else float("inf")
        lines.append(
            f"{name:<8} {frac * 100:>13.2f}% {conv_time:>14.3f} {sa_time:>18.3f} "
            f"{prop:>15.4f} {overhead:>9.2f} {speedup:>8.2f}"
        )
    text = "\n".join(lines)

    # Shape claims: larger changed fractions see smaller speedups.
    changed = [(frac, conv_time / prop) for _n, frac, conv_time, _s, prop in rows if prop > 0]
    big = [s for f, s in changed if f > 0.10]
    small = [s for f, s in changed if 0 < f < 0.02]
    if big and small:
        assert min(small) > max(big) * 0.5  # inverse trend (with slack)
    # Mirror toggles cost more than diffuse toggles on average (paper: ~2x).
    d_props = [p for (n, _f, _c, _s, p) in rows if n.endswith("D")]
    m_props = [p for (n, _f, _c, _s, p) in rows if n.endswith("M")]
    assert sum(m_props) > sum(d_props)

    emit(capsys, "Table 2", text)
