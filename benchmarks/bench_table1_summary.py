"""Table 1: summary of benchmark timings.

For every application the paper lists (map, filter, split, msort, qsort,
vec-reduce, vec-mult, mat-vec-mult, mat-add, transpose, mat-mult,
block-mat-mult) we report: conventional run, self-adjusting run, average
propagation time over random incremental changes, overhead
(self-adj/conv), and speedup (conv/propagation).

Shape claims checked against the paper: overhead is a modest constant;
speedups are large for all benchmarks; transpose's propagation is
essentially free; the blocked representation has lower overhead but lower
speedup than element-wise mat-mult.
"""

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_table

from _util import emit, once

#: (application, scaled input size) -- the paper's sizes are 1e6/1e5/1e3;
#: ours are scaled for the interpreted substrate.
SIZES = [
    ("map", 3000),
    ("filter", 3000),
    ("split", 3000),
    ("msort", 400),
    ("qsort", 600),
    ("vec-reduce", 3000),
    ("vec-mult", 1500),
    ("mat-vec-mult", 40),
    ("mat-add", 32),
    ("transpose", 48),
    ("mat-mult", 12),
    ("block-mat-mult", 32),
]


def test_table1_summary(benchmark, capsys):
    def run():
        rows = []
        for name, n in SIZES:
            rows.append(
                measure_app(REGISTRY[name], n, prop_samples=10, seed=0)
            )
        return rows

    rows = once(benchmark, run)
    text = format_table(rows, "Table 1: summary of benchmark timings")
    by_name = {r.name: r for r in rows}

    # Paper shape claims.
    assert all(r.speedup > 3 for r in rows), "propagation must beat re-running"
    assert by_name["transpose"].speedup > 1000  # paper: 4.2e7 (free updates)
    assert by_name["transpose"].overhead < 2.0  # paper: 1.0
    # Blocked representation: coarser tracking.  The deterministic face of
    # the paper's overhead/speedup trade-off is modifiables *per element*:
    # orders of magnitude fewer when blocked.  (The wall-clock speedup
    # comparison across different matrix sizes is too noisy to assert;
    # Figure 7 makes the speedup trade-off within one size.)
    block_row = by_name["block-mat-mult"]
    elem_row = by_name["mat-mult"]
    block_density = block_row.mods_created / (block_row.n ** 2)
    elem_density = elem_row.mods_created / (elem_row.n ** 2)
    assert block_density * 20 < elem_density

    emit(capsys, "Table 1", text)
