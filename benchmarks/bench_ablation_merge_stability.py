"""Ablation: merge trace stability (DESIGN.md Section 6).

Our msort's merge memoizes on suffix *pairs*; a change that moves a merge
exhaustion boundary re-keys the output suffix's identity and the
re-keying propagates upward, making propagation grow ~linearly in n.  The
runtime's unsafe interface (``Engine.keyed_mod`` -- keyed destination
allocation, the analogue of AFL's unsafe interface that the paper's
Section 4.9 credits for AFL's edge) stabilizes output-cell identities and
restores polylogarithmic propagation.

This ablation quantifies the difference: propagation work per change for
the pair-keyed and identity-keyed hand-written msorts across input sizes.
"""

import random

import pytest

from repro.apps import REGISTRY
from repro.bench.handwritten import hand_msort, hand_msort_keyed
from repro.sac.engine import Engine
from repro.interp.marshal import ModListInput

from _util import emit, once

SIZES = [64, 256, 1024, 4096]


def _work_per_change(make_sort, n: int) -> float:
    app = REGISTRY["msort"]
    rng = random.Random(5)
    data = app.make_data(n, rng)
    engine = Engine()
    handle = ModListInput(engine, data)
    make_sort(engine, handle.head)
    before = engine.meter.reads_executed + engine.meter.edges_reexecuted
    for step in range(8):
        app.apply_change(handle, rng, step)
        engine.propagate()
    return (engine.meter.reads_executed + engine.meter.edges_reexecuted - before) / 8


def test_merge_stability_ablation(benchmark, capsys):
    def run():
        return {
            "pair-keyed merge": [_work_per_change(hand_msort, n) for n in SIZES],
            "identity-keyed merge (keyed_mod)": [
                _work_per_change(hand_msort_keyed, n) for n in SIZES
            ],
        }

    series = once(benchmark, run)

    header = f"{'n':>8} {'pair-keyed':>12} {'identity-keyed':>15}"
    lines = [
        "Merge-stability ablation: propagation work (reads) per change",
        header,
        "-" * len(header),
    ]
    for i, n in enumerate(SIZES):
        lines.append(
            f"{n:>8} {series['pair-keyed merge'][i]:>12.1f} "
            f"{series['identity-keyed merge (keyed_mod)'][i]:>15.1f}"
        )
    text = "\n".join(lines)

    pair = series["pair-keyed merge"]
    keyed = series["identity-keyed merge (keyed_mod)"]
    # Pair-keyed propagation grows ~linearly; keyed stays ~flat.
    assert pair[-1] / pair[0] > 10
    assert keyed[-1] / keyed[0] < 4
    assert keyed[-1] < pair[-1] / 10

    emit(capsys, "Ablation merge stability", text)
