"""Backend speedup: the closure-compilation backend vs the interpreter.

Both backends drive the *same* engine through the same primitive sequence
(the differential test suite asserts meter-exact equivalence), so any
timing difference is pure dispatch cost: AST ``isinstance`` ladders and
``Env`` dict chains on the interpreter side vs staged closures and
slot-indexed frames on the compiled side.

Claims checked at the default sizes: the compiled backend's initial msort
run is at least 1.4x faster at n=64, and change propagation is never
slower.  (The edge was ~2.3x before the engine hot-path overhaul; the
interpreter's operator-table primitive dispatch and inlined variable
lookups closed part of the gap from below, which is the desired outcome --
the absolute times of *both* backends dropped.)
``REPRO_BACKEND_SIZES`` overrides the sizes (e.g. "32 64" for a CI smoke
run); the claims are only asserted at the defaults.
``REPRO_BENCH_REPEAT`` overrides the number of timing attempts per
configuration; the headline table reports the per-size minimum and the
spread table below it reports min/median/stddev so noisy runs are visible
in the checked-in results.
"""

import os

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_series

from _util import bench_repeat, emit, format_spread_rows, once

_SIZES_ENV = os.environ.get("REPRO_BACKEND_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "32 64 128").split()]
_SMOKE = _SIZES_ENV is not None

#: Timing attempts per (backend, n); the minimum is the headline number,
#: the standard defense against scheduler noise on shared machines.
ATTEMPTS = bench_repeat(5)


def _measure(backend):
    app = REGISTRY["msort"]
    tries = [
        [
            measure_app(app, n, prop_samples=8, seed=1, backend=backend)
            for n in SIZES
        ]
        for _ in range(ATTEMPTS)
    ]
    rows = tries[0]
    runs = [[t[i].sa_run for t in tries] for i in range(len(SIZES))]
    props = [[t[i].avg_prop for t in tries] for i in range(len(SIZES))]
    return rows, runs, props


def test_backend_speedup_msort(benchmark, capsys):
    def run():
        return _measure("interp"), _measure("compiled")

    (interp_rows, interp_runs, interp_props), (
        compiled_rows,
        compiled_runs,
        compiled_props,
    ) = once(benchmark, run)

    # Identical engine work: the speedup is dispatch-only, by construction.
    for i, c in zip(interp_rows, compiled_rows):
        assert i.mods_created == c.mods_created
        assert i.trace_size == c.trace_size

    series = {
        "interp run (s)": [min(s) for s in interp_runs],
        "compiled run (s)": [min(s) for s in compiled_runs],
        "run speedup": [
            min(i) / min(c) for i, c in zip(interp_runs, compiled_runs)
        ],
        "interp prop (s)": [min(s) for s in interp_props],
        "compiled prop (s)": [min(s) for s in compiled_props],
        "prop speedup": [
            min(i) / min(c) for i, c in zip(interp_props, compiled_props)
        ],
    }
    text = format_series(
        "Backend speedup: msort, interp vs closure-compiled", SIZES, series
    )

    spread_rows = {}
    for i, n in enumerate(SIZES):
        spread_rows[f"interp prop n={n}"] = interp_props[i]
        spread_rows[f"compiled prop n={n}"] = compiled_props[i]
    text += "\n\n" + format_spread_rows(
        f"Timing spread over {ATTEMPTS} attempt(s)", spread_rows
    )

    if not _SMOKE:
        at64 = SIZES.index(64)
        assert series["run speedup"][at64] >= 1.4, (
            "compiled backend lost its initial-run edge at n=64: "
            f"{series['run speedup'][at64]:.2f}x"
        )
        assert all(s >= 1.0 for s in series["prop speedup"]), (
            f"compiled propagation slower than interp: {series['prop speedup']}"
        )

    emit(capsys, "Backend speedup", text)
