"""Backend speedup: the closure-compilation backend vs the interpreter.

Both backends drive the *same* engine through the same primitive sequence
(the differential test suite asserts meter-exact equivalence), so any
timing difference is pure dispatch cost: AST ``isinstance`` ladders and
``Env`` dict chains on the interpreter side vs staged closures and
slot-indexed frames on the compiled side.

Claims checked at the default sizes: the compiled backend's initial msort
run is at least 2x faster at n=64, and change propagation is never slower.
``REPRO_BACKEND_SIZES`` overrides the sizes (e.g. "32 64" for a CI smoke
run); the claims are only asserted at the defaults.
"""

import os

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_series

from _util import emit, once

_SIZES_ENV = os.environ.get("REPRO_BACKEND_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "32 64 128").split()]
_SMOKE = _SIZES_ENV is not None

#: Timing attempts per (backend, n); the minimum is reported, which is the
#: standard defense against scheduler noise on shared machines.
ATTEMPTS = 5


def _measure(backend):
    app = REGISTRY["msort"]
    tries = [
        [
            measure_app(app, n, prop_samples=8, seed=1, backend=backend)
            for n in SIZES
        ]
        for _ in range(ATTEMPTS)
    ]
    rows = tries[0]
    runs = [min(t[i].sa_run for t in tries) for i in range(len(SIZES))]
    props = [min(t[i].avg_prop for t in tries) for i in range(len(SIZES))]
    return rows, runs, props


def test_backend_speedup_msort(benchmark, capsys):
    def run():
        return _measure("interp"), _measure("compiled")

    (interp_rows, interp_runs, interp_props), (
        compiled_rows,
        compiled_runs,
        compiled_props,
    ) = once(benchmark, run)

    # Identical engine work: the speedup is dispatch-only, by construction.
    for i, c in zip(interp_rows, compiled_rows):
        assert i.mods_created == c.mods_created
        assert i.trace_size == c.trace_size

    series = {
        "interp run (s)": interp_runs,
        "compiled run (s)": compiled_runs,
        "run speedup": [i / c for i, c in zip(interp_runs, compiled_runs)],
        "interp prop (s)": interp_props,
        "compiled prop (s)": compiled_props,
        "prop speedup": [i / c for i, c in zip(interp_props, compiled_props)],
    }
    text = format_series(
        "Backend speedup: msort, interp vs closure-compiled", SIZES, series
    )

    if not _SMOKE:
        at64 = SIZES.index(64)
        assert series["run speedup"][at64] >= 2.0, (
            "compiled backend lost its 2x initial-run edge at n=64: "
            f"{series['run speedup'][at64]:.2f}x"
        )
        assert all(s >= 1.0 for s in series["prop speedup"]), (
            f"compiled propagation slower than interp: {series['prop speedup']}"
        )

    emit(capsys, "Backend speedup", text)
