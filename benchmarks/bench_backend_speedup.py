"""Backend speedup: the compiled backends vs the interpreter.

All three backends drive the *same* engine through the same primitive
sequence (the differential test suite asserts meter-exact equivalence),
so any timing difference is pure dispatch cost: AST ``isinstance``
ladders and ``Env`` dict chains on the interpreter side, vs staged
closures and slot-indexed frames (``compiled``), vs flat instruction
sequences under an explicit control stack (``stack``).

Claims checked at the default sizes: the compiled backend's initial
msort run is at least 1.4x faster at n=64 and neither compiled backend's
change propagation is ever slower than the interpreter's.  (The stack
backend's instruction dispatch avoids the recursive backends' Python
call/return churn entirely, and on this workload it edges out even the
closure backend on both run and propagation; its headline feature --
recursion-free deep workloads -- is measured by
``bench_deep_recursion.py``.)
``REPRO_BACKEND_SIZES`` overrides the sizes (e.g. "32 64" for a CI smoke
run); the claims are only asserted at the defaults.
``REPRO_BENCH_REPEAT`` overrides the number of timing attempts per
configuration; the headline table reports the per-size minimum and the
spread table below it reports min/median/stddev so noisy runs are visible
in the checked-in results.
"""

import os

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.backends import BACKENDS
from repro.bench import format_series

from _util import bench_repeat, emit, format_spread_rows, once

_SIZES_ENV = os.environ.get("REPRO_BACKEND_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "32 64 128").split()]
_SMOKE = _SIZES_ENV is not None

#: Timing attempts per (backend, n); the minimum is the headline number,
#: the standard defense against scheduler noise on shared machines.
ATTEMPTS = bench_repeat(5)


def _measure(backend):
    app = REGISTRY["msort"]
    tries = [
        [
            measure_app(app, n, prop_samples=8, seed=1, backend=backend)
            for n in SIZES
        ]
        for _ in range(ATTEMPTS)
    ]
    rows = tries[0]
    runs = [[t[i].sa_run for t in tries] for i in range(len(SIZES))]
    props = [[t[i].avg_prop for t in tries] for i in range(len(SIZES))]
    return rows, runs, props


def test_backend_speedup_msort(benchmark, capsys):
    def run():
        return {b: _measure(b) for b in BACKENDS}

    measured = once(benchmark, run)
    interp_rows, interp_runs, interp_props = measured["interp"]

    # Identical engine work: the speedup is dispatch-only, by construction.
    for backend in BACKENDS:
        for i, c in zip(interp_rows, measured[backend][0]):
            assert i.mods_created == c.mods_created
            assert i.trace_size == c.trace_size

    series = {"interp run (s)": [min(s) for s in interp_runs]}
    for backend in BACKENDS:
        if backend == "interp":
            continue
        runs, props = measured[backend][1], measured[backend][2]
        series[f"{backend} run (s)"] = [min(s) for s in runs]
        series[f"{backend} run speedup"] = [
            min(i) / min(c) for i, c in zip(interp_runs, runs)
        ]
    series["interp prop (s)"] = [min(s) for s in interp_props]
    for backend in BACKENDS:
        if backend == "interp":
            continue
        props = measured[backend][2]
        series[f"{backend} prop (s)"] = [min(s) for s in props]
        series[f"{backend} prop speedup"] = [
            min(i) / min(c) for i, c in zip(interp_props, props)
        ]
    text = format_series(
        "Backend speedup: msort, interp vs compiled vs stack", SIZES, series
    )

    spread_rows = {}
    for i, n in enumerate(SIZES):
        for backend in BACKENDS:
            spread_rows[f"{backend} prop n={n}"] = measured[backend][2][i]
    text += "\n\n" + format_spread_rows(
        f"Timing spread over {ATTEMPTS} attempt(s)", spread_rows
    )

    if not _SMOKE:
        at64 = SIZES.index(64)
        assert series["compiled run speedup"][at64] >= 1.4, (
            "compiled backend lost its initial-run edge at n=64: "
            f"{series['compiled run speedup'][at64]:.2f}x"
        )
        for backend in BACKENDS:
            if backend == "interp":
                continue
            speedups = series[f"{backend} prop speedup"]
            assert all(s >= 1.0 for s in speedups), (
                f"{backend} propagation slower than interp: {speedups}"
            )

    emit(capsys, "Backend speedup", text)
