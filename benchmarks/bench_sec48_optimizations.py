"""Section 4.8: effect of the compiler optimizations.

The paper measures each benchmark compiled with and without the Section
3.4 rewrite rules and reports improvements of up to 60% in run time and in
propagation time/space.  We report, per benchmark: static primitive counts
(mods/reads/writes in the translated code) and the dynamic run/propagation
ratio Unopt/Optimized.
"""

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.core.optimize import count_primitives

from _util import emit, once

SIZES = {"map": 1500, "filter": 1500, "qsort": 300, "msort": 200}


def test_sec48_optimizations(benchmark, capsys):
    def run():
        rows = []
        for name, n in SIZES.items():
            app = REGISTRY[name]
            opt_counts = count_primitives(app.compiled().sxml_translated)
            unopt_counts = count_primitives(
                app.compiled(optimize_flag=False).sxml_translated
            )
            opt = measure_app(app, n, prop_samples=8, seed=6)
            unopt = measure_app(
                app, n, prop_samples=8, seed=6, optimize_flag=False
            )
            rows.append((name, opt_counts, unopt_counts, opt, unopt))
        return rows

    rows = once(benchmark, run)

    header = (
        f"{'bench':<8} {'static mods':>12} {'static reads':>13} "
        f"{'run ratio':>10} {'prop ratio':>11} {'trace ratio':>12}"
    )
    lines = [
        "Section 4.8: Unopt/Optimized ratios (higher = optimizer helps more)",
        header,
        "-" * len(header),
    ]
    for name, oc, uc, opt, unopt in rows:
        lines.append(
            f"{name:<8} {uc['mod']:>5}/{oc['mod']:<6} {uc['read']:>6}/{oc['read']:<6} "
            f"{unopt.sa_run / opt.sa_run:>10.2f} "
            f"{unopt.avg_prop / opt.avg_prop:>11.2f} "
            f"{unopt.trace_size / opt.trace_size:>12.2f}"
        )
    text = "\n".join(lines)

    # The rules remove redundant primitives on every list benchmark, and
    # buy measurable run time and space on average.
    for _name, oc, uc, _o, _u in rows:
        assert uc["mod"] > oc["mod"]
        assert uc["read"] > oc["read"]
    # Deterministic space effect: the rules shrink the live trace.
    avg_trace_ratio = sum(
        u.trace_size / o.trace_size for _n, _oc, _uc, o, u in rows
    ) / len(rows)
    assert avg_trace_ratio > 1.05

    emit(capsys, "Section 4.8 optimizations", text)
