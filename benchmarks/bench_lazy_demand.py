"""Demand-driven propagation vs eager propagation: k edits, one read.

The laziness claim: when a host makes many edits but only observes a
small part of the output, eager propagation pays for the whole dirty
queue after every edit, while lazy mode only marks suspicion at edit
time and, at the single read, re-executes just the dirty cone feeding
the observed cell.  The scenario is msort with EDITS random edits and
one read of the output's head cell:

* eager regime: EDITS x (edit + full propagate), then peek the head --
  the eager discipline must propagate after every edit to keep the
  output consistent;
* lazy regime: EDITS edits (suspect marking included in the timed
  section), then one ``Session.get(head)`` demand.

Most edits land in cells the head's cone never touches, so the lazy
side must beat the eager side by at least 10x at n=256.

``REPRO_LAZY_SIZES`` overrides the input sizes (e.g. "64" for a CI
smoke run); the claim is only asserted at the defaults.
"""

import os
import random
import time

from repro.api import Session
from repro.apps import REGISTRY
from repro.bench import format_series

from _util import emit, once

_SIZES_ENV = os.environ.get("REPRO_LAZY_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "64 128 256").split()]
_SMOKE = _SIZES_ENV is not None

EDITS = 32
ATTEMPTS = 5


def _fresh(n, mode, seed=3):
    app = REGISTRY["msort"]
    rng = random.Random(seed)
    session = Session(app, mode=mode)
    output = session.run(data=app.make_data(n, rng))
    return app, rng, session, output


def _eager_time(n):
    """Seconds for EDITS edit+propagate rounds plus the head read."""
    app, rng, session, output = _fresh(n, "eager")
    started = time.perf_counter()
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
        session.propagate()
    head = output.peek()
    elapsed = time.perf_counter() - started
    assert head is not None
    return elapsed


def _lazy_time(n):
    """Seconds for EDITS edits (suspect marking and all) plus one
    demand of the head cell; also returns how much work the demand did
    and how much it deferred."""
    app, rng, session, output = _fresh(n, "lazy")
    meter = session.engine.meter
    started = time.perf_counter()
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
    head = session.get(output)
    elapsed = time.perf_counter() - started
    assert head is not None
    return elapsed, meter.edges_reexecuted, meter.demand_deferred


def test_lazy_demand_msort(benchmark, capsys):
    def run():
        eager = [
            min(_eager_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        lazy, reexec, deferred = [], [], []
        for n in SIZES:
            samples = [_lazy_time(n) for _ in range(ATTEMPTS)]
            lazy.append(min(s[0] for s in samples))
            reexec.append(samples[0][1])
            deferred.append(samples[0][2])
        return eager, lazy, reexec, deferred

    eager, lazy, reexec, deferred = once(benchmark, run)

    speedups = [e / l for e, l in zip(eager, lazy)]
    series = {
        f"{EDITS} eager edit+prop rounds (s)": eager,
        f"{EDITS} edits + 1 head demand (s)": lazy,
        "lazy speedup": speedups,
        "reads re-executed by demand": reexec,
        "queue entries deferred": deferred,
    }
    text = format_series(
        f"Lazy demand: msort, {EDITS} edits then one head read, "
        f"eager vs demand-driven",
        SIZES,
        series,
    )

    if not _SMOKE:
        at256 = SIZES.index(256)
        assert speedups[at256] >= 10.0, (
            f"lazy demand lost its 10x edge at n=256: "
            f"{speedups[at256]:.2f}x"
        )

    emit(capsys, "Lazy demand", text)
