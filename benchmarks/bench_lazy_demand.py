"""Demand-driven propagation vs eager propagation: k edits, one read.

The laziness claim: when a host makes many edits but only observes a
small part of the output, eager propagation pays for the whole dirty
queue after every edit, while lazy mode only marks suspicion at edit
time and, at the single read, re-executes just the dirty cone feeding
the observed cell.  The scenario is msort with EDITS random edits and
one read of the output's head cell:

* eager regime: EDITS x (edit + full propagate), then peek the head --
  the eager discipline must propagate after every edit to keep the
  output consistent;
* lazy regime: EDITS edits (suspect marking included in the timed
  section), then one ``Session.get(head)`` demand.

Most edits land in cells the head's cone never touches, so the lazy
side must beat the eager side by at least 10x at n=256.

Two further regimes compare the maintained reverse-reachability
summaries (``feeds="summary"``, the default) against the retired
per-demand DFS (``feeds="dfs"``):

* repeated-demand: EDITS staged edits (a large standing dirty queue),
  then REPEATS rounds of one edit plus one head demand.  Re-execution
  work is *identical* between the impls (the relevance verdicts agree),
  so wall times land within noise of each other; the asymmetry is in
  the relevance filter itself, reported as deterministic counters: the
  DFS explores ``feeds_dfs_visits`` reader-graph nodes to produce its
  per-entry verdicts, where the summaries answer each verdict with one
  bitmask test.  The gate (>=3x at n=256) is on visits per verdict --
  machine-noise-free, and exactly the cost the summaries removed from
  the drain loop.
* many-targets: the same standing queue, then REPEATS rounds of one
  edit plus one multi-target demand of 8 output-spine cells held from
  the initial run (the server-pool pattern: clients keep references and
  re-read them in batches).

``REPRO_LAZY_SIZES`` overrides the input sizes (e.g. "64" for a CI
smoke run); the claims are only asserted at the defaults.
"""

import os
import random
import time

from repro.api import Session
from repro.apps import REGISTRY
from repro.bench import format_series
from repro.sac.modifiable import Modifiable

from _util import emit, format_spread_rows, once

_SIZES_ENV = os.environ.get("REPRO_LAZY_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "64 128 256").split()]
_SMOKE = _SIZES_ENV is not None

EDITS = 32
REPEATS = 8
ATTEMPTS = 5


def _fresh(n, mode, seed=3, feeds=None):
    app = REGISTRY["msort"]
    rng = random.Random(seed)
    session = Session(app, mode=mode, feeds=feeds)
    output = session.run(data=app.make_data(n, rng))
    return app, rng, session, output


def _eager_time(n):
    """Seconds for EDITS edit+propagate rounds plus the head read."""
    app, rng, session, output = _fresh(n, "eager")
    started = time.perf_counter()
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
        session.propagate()
    head = output.peek()
    elapsed = time.perf_counter() - started
    assert head is not None
    return elapsed


def _lazy_time(n):
    """Seconds for EDITS edits (suspect marking and all) plus one
    demand of the head cell; also returns how much work the demand did
    and how much it deferred."""
    app, rng, session, output = _fresh(n, "lazy")
    meter = session.engine.meter
    started = time.perf_counter()
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
    head = session.get(output)
    elapsed = time.perf_counter() - started
    assert head is not None
    return elapsed, meter.edges_reexecuted, meter.demand_deferred


def test_lazy_demand_msort(benchmark, capsys):
    def run():
        eager = [
            min(_eager_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        lazy, reexec, deferred = [], [], []
        for n in SIZES:
            samples = [_lazy_time(n) for _ in range(ATTEMPTS)]
            lazy.append(min(s[0] for s in samples))
            reexec.append(samples[0][1])
            deferred.append(samples[0][2])
        return eager, lazy, reexec, deferred

    eager, lazy, reexec, deferred = once(benchmark, run)

    speedups = [e / l for e, l in zip(eager, lazy)]
    series = {
        f"{EDITS} eager edit+prop rounds (s)": eager,
        f"{EDITS} edits + 1 head demand (s)": lazy,
        "lazy speedup": speedups,
        "reads re-executed by demand": reexec,
        "queue entries deferred": deferred,
    }
    text = format_series(
        f"Lazy demand: msort, {EDITS} edits then one head read, "
        f"eager vs demand-driven",
        SIZES,
        series,
    )

    if not _SMOKE:
        at256 = SIZES.index(256)
        assert speedups[at256] >= 10.0, (
            f"lazy demand lost its 10x edge at n=256: "
            f"{speedups[at256]:.2f}x"
        )

    emit(capsys, "Lazy demand", text)


# ----------------------------------------------------------------------
# Summary vs DFS regimes


def _repeated_demand(n, feeds):
    """EDITS staged edits, then REPEATS x (one edit + one head demand).

    Returns the wall seconds of the demand rounds and the meter deltas
    the gate needs: reader-graph nodes the DFS explored, per-entry
    relevance verdicts produced (queue pops: drained + deferred), and
    re-executions (must be impl-independent)."""
    app, rng, session, output = _fresh(n, "lazy", feeds=feeds)
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
    meter = session.engine.meter
    before = meter.snapshot()
    started = time.perf_counter()
    for k in range(REPEATS):
        app.apply_change(session.input_handle, rng, EDITS + k)
        head = session.get(output)
        assert head is not None
    elapsed = time.perf_counter() - started
    after = meter.snapshot()
    visits = after["feeds_dfs_visits"] - before["feeds_dfs_visits"]
    verdicts = (
        after["queue_drained"] - before["queue_drained"]
        + after["demand_deferred"] - before["demand_deferred"]
    )
    reexec = after["edges_reexecuted"] - before["edges_reexecuted"]
    return elapsed, visits, verdicts, reexec


def _spine_cells(output, count):
    """``count`` spaced modifiables along a consistent cons-list spine."""
    cells, node = [], output
    while isinstance(node, Modifiable):
        cells.append(node)
        value = node.peek()
        if value.arg is None:
            break
        node = value.arg[1]
    stride = max(1, len(cells) // count)
    return cells[:: stride][:count]


def _many_targets(n, feeds):
    """EDITS staged edits, then REPEATS x (one edit + one batched demand
    of 8 output-spine cells held since the initial run)."""
    app, rng, session, output = _fresh(n, "lazy", feeds=feeds)
    targets = _spine_cells(output, 8)
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
    engine = session.engine
    started = time.perf_counter()
    for k in range(REPEATS):
        app.apply_change(session.input_handle, rng, EDITS + k)
        values = engine.demand(targets)
        assert len(values) == len(targets)
    return time.perf_counter() - started


def test_repeated_demand_summary_vs_dfs(benchmark, capsys):
    def run():
        rows = {}
        for n in SIZES:
            for feeds in ("summary", "dfs"):
                samples = [_repeated_demand(n, feeds) for _ in range(ATTEMPTS)]
                rows[(n, feeds)] = (
                    [s[0] for s in samples],  # wall samples
                    samples[0][1],  # dfs visits (deterministic)
                    samples[0][2],  # verdicts
                    samples[0][3],  # reexecutions
                )
        return rows

    rows = once(benchmark, run)

    visits_per_verdict = [
        rows[(n, "dfs")][1] / max(rows[(n, "dfs")][2], 1) for n in SIZES
    ]
    series = {
        "summary wall (s)": [min(rows[(n, "summary")][0]) for n in SIZES],
        "dfs wall (s)": [min(rows[(n, "dfs")][0]) for n in SIZES],
        "dfs filter visits": [rows[(n, "dfs")][1] for n in SIZES],
        "relevance verdicts": [rows[(n, "dfs")][2] for n in SIZES],
        "dfs visits/verdict": visits_per_verdict,
        "summary ops/verdict": [1.0 for _ in SIZES],
    }
    text = format_series(
        f"Repeated demand: msort, {EDITS} staged edits then {REPEATS} x "
        f"(edit + head demand), maintained summaries vs per-demand DFS",
        SIZES,
        series,
    )
    text += "\n\n" + format_spread_rows(
        f"wall-time spread at n={SIZES[-1]} ({ATTEMPTS} attempts)",
        {
            "summary": rows[(SIZES[-1], "summary")][0],
            "dfs": rows[(SIZES[-1], "dfs")][0],
        },
    )

    for n in SIZES:
        # Near-identical re-execution work: the DFS's never-retracted
        # positive memo can run an edge whose relevance died mid-drain
        # (the exact summaries defer it), and hazard-retry counts differ
        # with it, so allow a small band rather than exact equality.
        s_re, d_re = rows[(n, "summary")][3], rows[(n, "dfs")][3]
        assert abs(s_re - d_re) <= 0.05 * max(s_re, d_re), (
            f"impls diverged at n={n}: summary re-executed "
            f"{s_re} edges, dfs {d_re}"
        )
    if not _SMOKE:
        at256 = SIZES.index(256)
        # Re-execution work is identical between the impls (asserted
        # above), so wall times sit within scheduler noise of each other;
        # the claim the summaries make is about the per-entry drain check,
        # and that is deterministic: the DFS baseline explores >=3
        # reader-graph nodes for every relevance verdict that the
        # maintained summaries answer with a single bitmask test.
        assert visits_per_verdict[at256] >= 3.0, (
            f"summary filter lost its 3x edge over the DFS baseline at "
            f"n=256: {visits_per_verdict[at256]:.2f} visits/verdict"
        )

    emit(capsys, "Lazy demand repeated", text)


def test_many_targets_demand_summary_vs_dfs(benchmark, capsys):
    def run():
        out = {}
        for feeds in ("summary", "dfs"):
            out[feeds] = [
                min(_many_targets(n, feeds) for _ in range(ATTEMPTS))
                for n in SIZES
            ]
        return out

    walls = once(benchmark, run)
    series = {
        "summary wall (s)": walls["summary"],
        "dfs wall (s)": walls["dfs"],
    }
    text = format_series(
        f"Many-targets demand: msort, {EDITS} staged edits then "
        f"{REPEATS} x (edit + batched demand of 8 spine cells)",
        SIZES,
        series,
    )
    emit(capsys, "Lazy demand many targets", text)
