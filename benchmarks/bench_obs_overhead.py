"""Observability overhead on the Figure 6 msort workload.

The engine emits trace events behind a no-op-by-default hook: with no hook
attached, every emission site costs one attribute load and an ``is None``
test.  This benchmark quantifies that design on the msort workload in
three configurations:

* **disabled** -- no hook attached (the production configuration);
* **noop hook** -- a base :class:`repro.obs.events.TraceHook` attached,
  so every emission dispatches to an empty method;
* **event log** -- a full :class:`repro.obs.events.EventLog` recording
  structured events.

Two independent *disabled* measurements are taken; their spread is the
measurement noise floor, and the acceptance target is that the disabled
configuration is indistinguishable from itself within that floor (<5%
on the initial-run plus propagation aggregate, allowing for timer noise).
A no-op hook is expected to cost real time (one Python call per event) --
that cost is what the ``hook is None`` guard avoids.
"""

import os

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.obs import EventLog, TraceHook

from _util import emit, once

N = int(os.environ.get("REPRO_OBS_OVERHEAD_N", "400"))
PROP_SAMPLES = 16


ROUNDS = 3


def _measure(hook):
    row = measure_app(
        REGISTRY["msort"],
        N,
        prop_samples=PROP_SAMPLES,
        seed=1,
        repeats=1,
        skip_conventional=True,
        hook=hook,
    )
    return row.sa_run + row.avg_prop * PROP_SAMPLES


def test_obs_overhead_msort(benchmark, capsys):
    configs = {
        "disabled (a)": lambda: None,
        "disabled (b)": lambda: None,
        "noop hook": TraceHook,
        "event log": lambda: EventLog(maxlen=2_000_000),
    }

    def run():
        measure_app(  # warm-up: compile, caches, recursion limit
            REGISTRY["msort"], N, prop_samples=2, seed=1, skip_conventional=True
        )
        # Interleave rounds and keep the per-config minimum: the minimum is
        # the standard robust estimator under one-sided timing noise.
        best = {name: float("inf") for name in configs}
        for _ in range(ROUNDS):
            for name, make in configs.items():
                best[name] = min(best[name], _measure(make()))
        return best

    times = once(benchmark, run)

    base = min(times["disabled (a)"], times["disabled (b)"])
    lines = [
        f"msort n={N}, initial run + {PROP_SAMPLES} propagations "
        f"(min of {ROUNDS} rounds):"
    ]
    for name, seconds in times.items():
        lines.append(f"  {name:<14} {seconds:8.4f}s  ({seconds / base:5.2f}x)")
    noise = abs(times["disabled (a)"] - times["disabled (b)"]) / base
    lines.append(f"  disabled-vs-disabled spread (noise floor): {noise:.1%}")
    emit(capsys, "Observability overhead", "\n".join(lines))

    # The disabled hook must be free up to measurement noise (<5% target);
    # the noop hook pays one Python call per event and must stay moderate.
    assert noise < 0.05, "hook-disabled overhead exceeds the 5% target"
    assert times["noop hook"] < 3.0 * base
    assert times["event log"] < 10.0 * base
