"""Figure 6: msort across input sizes.

Three series, as in the paper: complete-run time for the conventional and
self-adjusting versions (left plot), change-propagation time (middle), and
speedup of propagation over the conventional run (right).

Shape claims: both complete runs grow like O(n log n) with a constant
overhead factor between them; propagation grows much more slowly than the
complete run; speedup grows with n.  (EXPERIMENTS.md records that our
propagation growth is ~linear-with-small-constant rather than the paper's
O(log n), due to merge trace stability -- the overhead-constant and
growing-speedup claims still hold.)
"""

import os

import pytest

from repro.apps import REGISTRY
from repro.bench import format_phases, format_series, measure_app

from _util import emit, once

# REPRO_MSORT_SIZES overrides the sizes (e.g. "32 64" for a CI smoke run);
# the paper-shape assertions only hold at the default sizes.
_SIZES_ENV = os.environ.get("REPRO_MSORT_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "100 200 400 800").split()]
_SMOKE = _SIZES_ENV is not None


def test_fig6_msort_scaling(benchmark, capsys):
    app = REGISTRY["msort"]

    def run():
        return [
            measure_app(app, n, prop_samples=8, seed=1, repeats=3) for n in SIZES
        ]

    rows = once(benchmark, run)

    series = {
        "conv run (s)": [r.conv_run for r in rows],
        "self-adj run (s)": [r.sa_run for r in rows],
        "propagation (s)": [r.avg_prop for r in rows],
        "speedup": [r.speedup for r in rows],
        "overhead": [r.overhead for r in rows],
    }
    text = format_series("Figure 6: msort", SIZES, series)
    text += "\n\n" + format_phases(rows, "Per-phase engine work")

    if not _SMOKE:
        overheads = series["overhead"]
        # Overhead is a constant independent of n (paper Section 4.5).
        assert max(overheads) < 4 * min(overheads)
        # Speedup grows with input size.
        assert series["speedup"][-1] > series["speedup"][0]
        # Propagation is always much cheaper than a conventional rerun.
        assert all(r.avg_prop < r.conv_run / 3 for r in rows)

    emit(capsys, "Figure 6", text)
