"""Figure 6: msort across input sizes.

Three series, as in the paper: complete-run time for the conventional and
self-adjusting versions (left plot), change-propagation time (middle), and
speedup of propagation over the conventional run (right).

Shape claims: both complete runs grow like O(n log n) with a constant
overhead factor between them; propagation grows much more slowly than the
complete run; speedup grows with n.  (EXPERIMENTS.md records that our
propagation growth is ~linear-with-small-constant rather than the paper's
O(log n), due to merge trace stability -- the overhead-constant and
growing-speedup claims still hold.)
"""

import os

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_phases, format_series

from _util import emit, once

# REPRO_MSORT_SIZES overrides the sizes (e.g. "32 64" for a CI smoke run);
# the paper-shape assertions only hold at the default sizes.
_SIZES_ENV = os.environ.get("REPRO_MSORT_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "100 200 400 800").split()]
_SMOKE = _SIZES_ENV is not None


def test_fig6_msort_scaling(benchmark, capsys):
    app = REGISTRY["msort"]

    def run():
        rows = [
            measure_app(app, n, prop_samples=8, seed=1, repeats=3) for n in SIZES
        ]
        compiled = [
            measure_app(
                app, n, prop_samples=8, seed=1, skip_conventional=True,
                backend="compiled",
            )
            for n in SIZES
        ]
        return rows, compiled

    rows, compiled = once(benchmark, run)

    series = {
        "conv run (s)": [r.conv_run for r in rows],
        "self-adj run (s)": [r.sa_run for r in rows],
        "propagation (s)": [r.avg_prop for r in rows],
        "speedup": [r.speedup for r in rows],
        "overhead": [r.overhead for r in rows],
        # The closure-compiled backend: same engine work, staged dispatch
        # (see benchmarks/bench_backend_speedup.py and README "Backends").
        "compiled run (s)": [r.sa_run for r in compiled],
        "compiled prop (s)": [r.avg_prop for r in compiled],
        "compiled ovhd": [
            c.sa_run / r.conv_run for r, c in zip(rows, compiled)
        ],
    }
    text = format_series("Figure 6: msort", SIZES, series)
    text += "\n\n" + format_phases(rows, "Per-phase engine work")

    if not _SMOKE:
        overheads = series["overhead"]
        # Overhead is a constant independent of n (paper Section 4.5).
        assert max(overheads) < 4 * min(overheads)
        # Speedup grows with input size.
        assert series["speedup"][-1] > series["speedup"][0]
        # Propagation is always much cheaper than a conventional rerun.
        assert all(r.avg_prop < r.conv_run / 3 for r in rows)
        # Staging pays: the compiled backend's initial-run overhead over
        # the conventional run is below the interpreter's.  (Aggregated
        # across sizes; per-size runs are single-shot and noisy --
        # bench_backend_speedup.py asserts the per-size >=2x claim on
        # noise-resistant minima.)
        assert sum(c.sa_run for c in compiled) < sum(r.sa_run for r in rows)

    emit(capsys, "Figure 6", text)
