"""Type-inference tests (repro.lang.elaborate)."""

import pytest

from repro.lang.elaborate import elaborate
from repro.lang.errors import LmlTypeError
from repro.lang.parser import parse_program
from repro.lang.types import TArrow, TCon, TTuple, TVar, force, pretty


def infer(source, main="main"):
    return elaborate(parse_program(source), main=main)


def main_type(source):
    return pretty(infer(source).main_type)


def test_simple_arith_defaults_to_int():
    assert main_type("val main = fn x => x + 1") == "(int -> int)"


def test_real_arith():
    assert main_type("val main = fn x => x + 1.0") == "(real -> real)"


def test_division_is_real():
    assert main_type("val main = fn x => x / 2.0") == "(real -> real)"


def test_div_mod_are_int():
    assert main_type("val main = fn x => x div 2 + x mod 3") == "(int -> int)"


def test_comparison_yields_bool():
    assert main_type("val main = fn x => x < 3") == "(int -> bool)"


def test_overload_error_on_bool_arith():
    with pytest.raises(LmlTypeError):
        infer("val main = fn x => x + true")


def test_unbound_variable():
    with pytest.raises(LmlTypeError):
        infer("val main = nosuchvar")


def test_occurs_check():
    with pytest.raises(LmlTypeError):
        infer("val main = fn x => x x")


def test_if_branches_must_agree():
    with pytest.raises(LmlTypeError):
        infer("val main = fn b => if b then 1 else 1.0")


def test_condition_must_be_bool():
    with pytest.raises(LmlTypeError):
        infer("val main = fn x => if x + 1 then 1 else 2")


def test_polymorphic_identity_generalizes():
    src = """
    fun id x = x
    val a = id 1
    val b = id true
    val main = fn u => a
    """
    assert main_type(src).endswith("-> int)")


def test_value_restriction_blocks_generalization():
    src = """
    fun id x = x
    val once = id id
    val a = once 1
    val b = once true
    val main = fn u => a
    """
    with pytest.raises(LmlTypeError):
        infer(src)


def test_datatype_constructor_types():
    src = """
    datatype cell = Nil | Cons of int * cell
    val main = Cons (1, Cons (2, Nil))
    """
    assert main_type(src) == "cell"


def test_constructor_arity_errors():
    src = "datatype t = A of int val main = A"
    core = infer(src)  # bare non-nullary constructor eta-expands
    assert pretty(core.main_type) == "(int -> t)"
    with pytest.raises(LmlTypeError):
        infer("datatype t = A val main = A 3")


def test_polymorphic_datatype():
    src = """
    datatype 'a box = Box of 'a
    val main = (Box 1, Box true)
    """
    assert main_type(src) == "(int box * bool box)"


def test_case_unifies_clause_types():
    src = """
    datatype t = A | B of int
    val main = fn x => case x of A => 0 | B n => n
    """
    assert main_type(src) == "(t -> int)"


def test_case_pattern_type_mismatch():
    src = """
    datatype t = A | B of int
    val main = fn x => case x of A => 0 | B n => n + 0.5
    """
    with pytest.raises(LmlTypeError):
        infer(src)


def test_tuple_projection_needs_known_shape():
    with pytest.raises(LmlTypeError):
        infer("val main = fn p => #1 p")
    assert (
        main_type("val main = fn (p : int * bool) => #1 p")
        == "((int * bool) -> int)"
    )


def test_references():
    assert main_type("val main = fn x => !(ref (x + 1))") == "(int -> int)"
    assert main_type("val main = fn x => ref (x * 2.0)") == "(real -> real ref)"


def test_ref_assign_deref():
    src = "val main = fn x => let val r = ref 0 in (r := x; !r) end"
    assert main_type(src) == "(int -> int)"


def test_assign_type_mismatch():
    with pytest.raises(LmlTypeError):
        infer("val main = let val r = ref 0 in r := true end")


def test_builtin_vector_ops():
    src = "val main = fn v => vmap (v, fn x => x + 1)"
    assert main_type(src) == "(int vector -> int vector)"


def test_vreduce_type():
    src = "val main = fn v => vreduce (v, 0.0, fn (x, y) => x + y)"
    assert main_type(src) == "(real vector -> real)"


def test_named_prims_eta_expand():
    assert main_type("val main = sqrt") == "(real -> real)"
    assert main_type("val main = fn v => vmap (v, toReal)") == "(int vector -> real vector)"


def test_mutual_recursion():
    src = """
    fun even n = if n = 0 then true else odd (n - 1)
    and odd n = if n = 0 then false else even (n - 1)
    val main = even
    """
    assert main_type(src) == "(int -> bool)"


def test_fun_param_annotation():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun f (l : cell $C) = l
    val main = f
    """
    assert main_type(src) == "(cell -> cell)"


def test_type_abbreviation_expansion():
    src = """
    type row = (real $C) vector
    type matrix = row vector
    val main = fn (m : matrix) => vlength m
    """
    assert main_type(src) == "(real vector vector -> int)"


def test_abbrev_arity_error():
    src = """
    type 'a pairof = 'a * 'a
    val main = fn (x : (int, bool) pairof) => x
    """
    with pytest.raises(LmlTypeError):
        infer(src)


def test_duplicate_constructor_rejected():
    with pytest.raises(LmlTypeError):
        infer("datatype a = C datatype b = C val main = fn x => x")


def test_duplicate_pattern_variable_rejected():
    with pytest.raises(LmlTypeError):
        infer("val main = fn (x, x) => x")


def test_missing_main():
    with pytest.raises(LmlTypeError):
        infer("val notmain = 3")


def test_string_operations():
    assert main_type('val main = fn s => s ^ "!"') == "(string -> string)"
    assert main_type('val main = fn s => s < "m"') == "(string -> bool)"


def test_seq_type_is_second():
    assert main_type("val main = fn x => (x + 1; true)") == "(int -> bool)"


def test_destructuring_val():
    src = "val main = fn p => let val (a, b) = (1, true) in if b then a else 0 end"
    assert main_type(src).endswith("-> int)")
