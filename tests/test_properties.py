"""Cross-cutting property-based tests (hypothesis).

These complement the per-module tests: random computation DAGs and random
change sequences against reference semantics, exercising the runtime and
the whole compiler pipeline together.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core.pipeline import compile_program
from repro.core.sxmlutil import alpha_equal
from repro.interp.marshal import ModListInput, ModVectorInput
from repro.interp.values import list_value_to_python
from repro.sac.engine import Engine


# ----------------------------------------------------------------------
# Runtime: random computation DAGs


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=6),
    st.lists(
        st.tuples(st.integers(0, 10**6), st.integers(0, 10**6), st.sampled_from("+-*")),
        min_size=1,
        max_size=12,
    ),
    st.lists(st.tuples(st.integers(0, 10**6), st.integers(-100, 100)), max_size=8),
)
def test_random_dag_matches_direct_evaluation(inputs, gates, changes):
    """Build a random arithmetic DAG with lift(); after arbitrary input
    changes, every node equals its direct recomputation."""
    engine = Engine()
    input_mods = [engine.make_input(v) for v in inputs]
    ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b, "*": lambda a, b: a * b}

    nodes = list(input_mods)
    spec = []  # (left index, right index, op) for non-input nodes
    for li, ri, op in gates:
        left = nodes[li % len(nodes)]
        right = nodes[ri % len(nodes)]
        spec.append((li % len(nodes), ri % len(nodes), op))
        nodes.append(engine.lift(ops[op], left, right))

    def reference():
        values = list(current_inputs)
        for li, ri, op in spec:
            values.append(ops[op](values[li], values[ri]))
        return values

    current_inputs = list(inputs)
    assert [n.peek() for n in nodes] == reference()

    for pick, value in changes:
        index = pick % len(input_mods)
        current_inputs[index] = value
        engine.change(input_mods[index], value)
        engine.propagate()
        assert [n.peek() for n in nodes] == reference()


# ----------------------------------------------------------------------
# Compiled programs under random change sequences


_FILTER = compile_program(
    """
    datatype cell = Nil | Cons of int * cell $C
    fun keep l =
      case l of
        Nil => Nil
      | Cons (h, t) => if h mod 3 = 0 then Cons (h, keep t) else keep t
    val main : cell $C -> cell $C = keep
    """
)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 500), max_size=20),
    st.lists(
        st.tuples(st.integers(0, 10**6), st.sampled_from(["ins", "del", "set"])),
        max_size=15,
    ),
)
def test_compiled_filter_random_changes(initial, ops):
    sa = Session(_FILTER)
    xs = ModListInput(sa.engine, initial)
    out = sa.run(xs.head)

    def check():
        expected = [x for x in xs.to_python() if x % 3 == 0]
        assert list_value_to_python(out) == expected

    check()
    for pick, op in ops:
        if op == "ins" or len(xs) == 0:
            xs.insert(pick % (len(xs) + 1), pick % 1000)
        elif op == "del":
            xs.remove(pick % len(xs))
        else:
            xs.set(pick % len(xs), pick % 1000)
        sa.engine.propagate()
        check()


_SUM = compile_program(
    """
    val main : (real $C) vector -> real $C =
      fn v => vreduce (v, 0.0, fn (x, y) => x + y)
    """
)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=24
    ),
    st.lists(
        st.tuples(
            st.integers(0, 10**6),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        max_size=10,
    ),
)
def test_compiled_vector_sum_random_changes(values, changes):
    from repro.apps.vectors import tree_sum

    sa = Session(_SUM)
    v = ModVectorInput(sa.engine, values)
    out = sa.run(v.value)
    assert math.isclose(out.peek(), tree_sum(values), rel_tol=1e-9, abs_tol=1e-9)
    for pick, new in changes:
        v.set(pick % len(v), new)
        sa.engine.propagate()
        assert math.isclose(
            out.peek(), tree_sum(v.to_python()), rel_tol=1e-9, abs_tol=1e-9
        )


# ----------------------------------------------------------------------
# Structural properties of compilation


_SOURCES = [
    "val main = fn x => x + 1",
    """
    datatype cell = Nil | Cons of int * cell $C
    fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h * 2, mapf t)
    val main : cell $C -> cell $C = mapf
    """,
    "val main : (real $C * real $C) -> real $C = fn (a, b) => a * b + a",
]


@settings(max_examples=9, deadline=None)
@given(st.integers(0, len(_SOURCES) - 1))
def test_compilation_is_deterministic_up_to_alpha(index):
    """Two independent compilations of the same source agree up to
    alpha-renaming of binders (fresh-name counters differ)."""
    a = compile_program(_SOURCES[index])
    b = compile_program(_SOURCES[index])
    assert alpha_equal(a.sxml_translated, b.sxml_translated)
    assert alpha_equal(a.sxml_conventional, b.sxml_conventional)


@settings(max_examples=9, deadline=None)
@given(st.integers(0, len(_SOURCES) - 1))
def test_alpha_equal_is_reflexive_on_real_programs(index):
    program = compile_program(_SOURCES[index])
    assert alpha_equal(program.sxml_translated, program.sxml_translated)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 200), max_size=12), st.integers(0, 2**31))
def test_conventional_and_self_adjusting_agree(initial, seed):
    """The two executables of one program always produce the same output."""
    import random

    from repro.interp.marshal import plain_list

    rng = random.Random(seed)
    program = _FILTER
    conv = program.conventional_instance()
    conv_out = list_value_to_python(conv.apply(plain_list(initial)))
    sa = Session(program)
    xs = ModListInput(sa.engine, initial)
    sa_out = list_value_to_python(sa.run(xs.head))
    assert conv_out == sa_out
