"""Exception-safe propagation: transactional aborts, poisoning, rollback,
rebuild, and interrupted-propagation resume (DESIGN.md Section 7).

The regression at the heart of this file: a reader that raises during
re-execution used to skip the splice-out and cursor restore, silently
corrupting the DDG while leaving the engine superficially usable.  Now the
abort is transactional -- the trace stays structurally consistent (checked
with ``obs.invariants.check_trace``), the failing edge stays queued, and
the session has typed recovery paths.
"""

import random
import sys

import pytest

from repro.api import PropagationBudgetExceeded, Session
from repro.apps import REGISTRY
from repro.obs import FanoutHook, check_trace
from repro.obs.faults import FaultInjector, PlantedFault
from repro.sac import (
    Engine,
    EnginePoisonedError,
    RecursionReexecutionError,
    ReexecutionError,
)
from repro.sac.exceptions import PropagationError


class Flaky:
    """A reader body that raises while ``broken`` is set.

    With a ``trigger`` value, only observations of that value raise --
    modelling a fault in the *new* input (so re-running with the old
    input, as rollback recovery does, succeeds).
    """

    def __init__(self, trigger=None):
        self.broken = False
        self.trigger = trigger
        self.runs = 0

    def maybe_raise(self, value=None):
        self.runs += 1
        if self.broken and (self.trigger is None or value == self.trigger):
            raise ValueError("flaky reader")


def flaky_chain(engine, m, flaky):
    """out = m * 2, via a reader that consults ``flaky`` every run."""

    def reader(dest, v):
        flaky.maybe_raise(v)
        engine.write(dest, v * 2)

    return engine.mod(
        lambda dest: engine.read(m, lambda v: reader(dest, v))
    )


# ----------------------------------------------------------------------
# Transactional re-execution (the satellite regression + tentpole core)


def test_raising_reader_aborts_transactionally_and_retries():
    engine = Engine()
    flaky = Flaky()
    m = engine.make_input(3)
    out = flaky_chain(engine, m, flaky)
    assert out.peek() == 6

    flaky.broken = True
    engine.change(m, 5)
    with pytest.raises(ReexecutionError) as exc_info:
        engine.propagate()
    err = exc_info.value
    assert isinstance(err.original, ValueError)
    assert err.consistent is True
    assert err.reexecuted == 0
    assert err.pending >= 1
    assert err.edge is not None and err.edge.dirty
    assert err.__cause__ is err.original

    # The trace is structurally whole, the failing edge still queued.
    check_trace(engine, expect_quiescent=True, expect_empty_queue=False)
    assert not engine.poisoned
    assert engine.meter.reexec_aborts == 1

    # Output is stale (last-good), not garbage.
    assert out.peek() == 6

    # Retry after the environment is fixed: the queued edge re-runs.
    flaky.broken = False
    assert engine.propagate() == 1
    assert out.peek() == 10
    check_trace(engine, expect_quiescent=True, expect_empty_queue=True)


def test_abort_preserves_successful_predecessor_reexecutions():
    """An abort midway through a pass keeps the reads that already re-ran."""
    engine = Engine()
    flaky = Flaky()
    a = engine.make_input(1)
    b = engine.make_input(10)
    doubled = engine.mod(
        lambda dest: engine.read(a, lambda v: engine.write(dest, v * 2))
    )
    tail = flaky_chain(engine, b, flaky)

    flaky.broken = True
    engine.change(a, 2)
    engine.change(b, 20)
    with pytest.raises(ReexecutionError) as exc_info:
        engine.propagate()
    # The ``a`` read (earlier timestamp) completed before the abort.
    assert exc_info.value.reexecuted == 1
    assert doubled.peek() == 4
    assert tail.peek() == 20  # stale last-good

    flaky.broken = False
    engine.propagate()
    assert tail.peek() == 40


def test_nested_partial_trace_is_spliced_out_on_abort():
    """A reader that builds nested structure before raising must not leak
    any of it into the trace."""
    engine = Engine()
    flaky = Flaky()
    m = engine.make_input(3)

    def reader(dest, v):
        inner = engine.mod(
            lambda d: engine.read(m, lambda w: engine.write(d, w + 1))
        )
        flaky.maybe_raise()
        engine.read(inner, lambda w: engine.write(dest, w * 10))

    out = engine.mod(lambda dest: engine.read(m, lambda v: reader(dest, v)))
    assert out.peek() == 40
    size_before = engine.trace_size()

    flaky.broken = True
    engine.change(m, 7)
    with pytest.raises(ReexecutionError):
        engine.propagate()
    check_trace(engine, expect_quiescent=True, expect_empty_queue=False)

    flaky.broken = False
    engine.propagate()
    assert out.peek() == 80
    # No leaked partial structure: same shape as an untroubled update.
    assert engine.trace_size() == size_before


def test_keyboard_interrupt_cleans_up_but_is_not_wrapped():
    engine = Engine()
    flaky = Flaky()
    m = engine.make_input(1)
    out = flaky_chain(engine, m, flaky)

    class Boom(KeyboardInterrupt):
        pass

    def raise_interrupt():
        raise Boom()

    flaky.maybe_raise = lambda value=None: (
        raise_interrupt() if flaky.broken else None
    )
    flaky.broken = True
    engine.change(m, 2)
    with pytest.raises(Boom):
        engine.propagate()
    # Cleanup ran anyway: consistent trace, edge requeued, not poisoned.
    check_trace(engine, expect_quiescent=True, expect_empty_queue=False)
    assert not engine.poisoned
    flaky.broken = False
    engine.propagate()
    assert out.peek() == 4


def test_recursion_error_is_typed_with_limit_hint():
    engine = Engine()
    deep = Flaky()

    def bottomless():
        bottomless()

    deep.maybe_raise = lambda value=None: bottomless() if deep.broken else None
    m = engine.make_input(1)
    out = flaky_chain(engine, m, deep)
    assert out.peek() == 2

    deep.broken = True
    engine.change(m, 2)
    saved = sys.getrecursionlimit()
    sys.setrecursionlimit(300)  # force the overflow quickly
    try:
        with pytest.raises(RecursionReexecutionError) as exc_info:
            engine.propagate()
    finally:
        sys.setrecursionlimit(saved)
    message = str(exc_info.value)
    assert "REPRO_RECURSION_LIMIT" in message
    assert isinstance(exc_info.value.original, RecursionError)
    # Same recovery contract as any other ReexecutionError.
    assert exc_info.value.consistent
    deep.broken = False
    engine.propagate()
    assert out.peek() == 4


def test_recursion_limit_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_RECURSION_LIMIT", "750000")
    assert Engine().recursion_limit == 750_000


# ----------------------------------------------------------------------
# Poisoning


def _poisoned_engine():
    """Make abort cleanup itself fail: the engine must poison itself."""
    engine = Engine()
    flaky = Flaky()
    m = engine.make_input(3)
    out = flaky_chain(engine, m, flaky)

    def broken_delete(a, b):
        raise RuntimeError("cleanup failure")

    engine._delete_range = broken_delete
    flaky.broken = True
    engine.change(m, 5)
    with pytest.raises(ReexecutionError) as exc_info:
        engine.propagate()
    assert exc_info.value.consistent is False
    return engine, m, out


def test_failed_abort_cleanup_poisons_engine():
    engine, _, _ = _poisoned_engine()
    assert engine.poisoned
    assert "cleanup failure" in engine._poison


def test_poisoned_engine_refuses_all_work():
    engine, m, _ = _poisoned_engine()
    for op in (
        lambda: engine.make_input(1),
        lambda: engine.change(m, 9),
        lambda: engine.propagate(),
        lambda: engine.rollback(),
        lambda: engine.compact(),
        lambda: engine.batch().__enter__(),
        lambda: engine.mod(lambda dest: engine.write(dest, 1)),
    ):
        with pytest.raises(EnginePoisonedError) as exc_info:
            op()
        assert exc_info.value.reason  # carries the poisoning cause


# ----------------------------------------------------------------------
# Transactional initial runs


def test_failed_mod_truncates_partial_trace():
    engine = Engine()
    m = engine.make_input(3)
    ok = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, v + 1))
    )
    size_before = engine.trace_size()

    def exploding(dest):
        engine.read(m, lambda v: engine.write(dest, v))
        raise RuntimeError("late failure")

    with pytest.raises(RuntimeError):
        engine.mod(exploding)
    # The partial trace is gone; earlier structure is untouched.
    assert engine.trace_size() == size_before
    assert engine.meter.run_aborts == 1
    check_trace(engine, expect_quiescent=True, expect_empty_queue=True)

    # The engine still works end to end.
    engine.change(m, 10)
    engine.propagate()
    assert ok.peek() == 11


def test_session_run_failure_is_transactional():
    app = REGISTRY["msort"]
    rng = random.Random(0)
    data = app.make_data(12, rng)
    injector = FaultInjector("write", at=5, during="run")
    session = Session(app, backend="interp", hook=injector)
    with pytest.raises(PlantedFault):
        session.run(data=data)
    assert injector.fired == 1
    check_trace(session.engine, expect_quiescent=True, expect_empty_queue=True)

    # The injector is spent; the same session reruns cleanly.
    output = session.run(data=data)
    assert app.readback(output) == app.reference(data)


# ----------------------------------------------------------------------
# Rollback (engine- and session-level)


def test_engine_rollback_restores_last_good_and_restages():
    engine = Engine()
    # The fault is in the *new* value: re-running with the old input (what
    # rollback recovery does after the undo) succeeds.
    flaky = Flaky(trigger=30)
    a = engine.make_input(1)
    b = engine.make_input(10)
    out = flaky_chain(engine, b, flaky)
    doubled = engine.mod(
        lambda dest: engine.read(a, lambda v: engine.write(dest, v * 2))
    )

    flaky.broken = True
    engine.change(a, 3)
    engine.change(b, 30)
    with pytest.raises(ReexecutionError):
        engine.propagate()

    undone, recovered, restaged = engine.rollback()
    assert undone == 2
    assert restaged == 2
    assert engine.meter.rollbacks == 1
    # Last-good state: outputs reflect the pre-edit inputs again...
    assert out.peek() == 20
    assert doubled.peek() == 2
    # ...and the edits are re-staged, not lost.
    flaky.broken = False
    engine.propagate()
    assert out.peek() == 60
    assert doubled.peek() == 6
    check_trace(engine, expect_quiescent=True, expect_empty_queue=True)


def test_rollback_journal_resets_after_complete_propagation():
    engine = Engine()
    m = engine.make_input(1)
    out = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, v + 1))
    )
    engine.change(m, 5)
    engine.propagate()
    # The propagated edit is the new last-good state: nothing to undo.
    assert engine.rollback() == (0, 0, 0)
    assert out.peek() == 6


def test_rollback_refused_during_batch():
    engine = Engine()
    engine.make_input(1)
    with engine.batch():
        with pytest.raises(PropagationError):
            engine.rollback()


def test_session_rollback_path():
    app = REGISTRY["msort"]
    rng = random.Random(0)
    data = app.make_data(16, rng)
    original = list(data)
    injector = FaultInjector("read", at=1)
    session = Session(app, backend="interp", hook=injector)
    output = session.run(data=data)

    app.apply_change(session.input_handle, rng, 0)
    stats = session.propagate(on_error="rollback")
    assert stats.path == "rollback"
    assert stats.undone >= 1
    assert stats.restaged == stats.undone
    assert isinstance(stats.error, ReexecutionError)
    # Rolled back to last-good: the output matches the *original* data.
    assert app.readback(output) == app.reference(original)

    # The edits were re-staged; a plain propagate applies them now.
    session.propagate()
    current = app.handle_data(session.input_handle)
    assert current != original
    assert app.readback(output) == app.reference(current)
    check_trace(session.engine, expect_quiescent=True, expect_empty_queue=True)


def test_session_rollback_reraises_when_poisoned():
    engine, m, _ = _poisoned_engine()
    session = Session(REGISTRY["msort"], engine=engine)
    with pytest.raises(EnginePoisonedError):
        session.propagate(on_error="rollback")


# ----------------------------------------------------------------------
# Rebuild (from-scratch fallback)


def test_session_rebuild_path_escapes_persistent_fault():
    app = REGISTRY["msort"]
    rng = random.Random(0)
    data = app.make_data(16, rng)
    injector = FaultInjector("read", at=0, repeat=True)  # persistent
    session = Session(app, backend="interp", hook=injector)
    session.run(data=data)
    old_engine = session.engine

    app.apply_change(session.input_handle, rng, 0)
    stats = session.propagate(on_error="rebuild")
    assert stats.path == "rebuild"
    assert isinstance(stats.error, ReexecutionError)
    assert session.rebuilds == 1
    assert session.engine is not old_engine
    # The faulty hook is deliberately left behind on the old engine.
    assert session.engine.hook is None

    current = app.handle_data(session.input_handle)
    assert app.readback(session.output) == app.reference(current)
    # The rebuilt session keeps working incrementally.
    app.apply_change(session.input_handle, rng, 1)
    assert session.propagate().path == "propagate"
    current = app.handle_data(session.input_handle)
    assert app.readback(session.output) == app.reference(current)
    assert session.stats()["rebuilds"] == 1


def test_persistent_fault_rollback_poisons_then_rebuild_recovers():
    """The full degradation chain: persistent fault -> rollback recovery
    itself fails -> engine poisoned -> rebuild still saves the session."""
    app = REGISTRY["msort"]
    rng = random.Random(0)
    data = app.make_data(16, rng)
    injector = FaultInjector("read", at=0, repeat=True)
    session = Session(app, backend="interp", hook=injector)
    session.run(data=data)

    app.apply_change(session.input_handle, rng, 0)
    # Rollback's recovery propagation re-hits the persistent fault: the
    # engine cannot restore any consistent state and poisons itself.
    with pytest.raises(ReexecutionError):
        session.propagate(on_error="rollback")
    assert session.engine.poisoned
    with pytest.raises(EnginePoisonedError):
        session.propagate()

    # Rebuild replaces the engine outright, so it recovers even now.
    stats = session.propagate(on_error="rebuild")
    assert stats.path == "rebuild"
    assert isinstance(stats.error, EnginePoisonedError)
    assert not session.engine.poisoned
    current = app.handle_data(session.input_handle)
    assert app.readback(session.output) == app.reference(current)


def test_rebuild_requires_app_and_handle():
    session = Session("msort")
    with pytest.raises(ValueError):
        session.rebuild()


def test_propagate_rejects_unknown_on_error():
    session = Session("msort")
    with pytest.raises(ValueError):
        session.propagate(on_error="ignore")


# ----------------------------------------------------------------------
# Interrupted propagation: budget/deadline resume (satellite coverage)


def _staged_session(app, backend, *, n=24, seed=3):
    rng = random.Random(seed)
    data = app.make_data(n, rng)
    session = Session(app, backend=backend)
    session.run(data=data)
    app.apply_change(session.input_handle, rng, 0)
    return session


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
def test_deadline_interrupt_then_resume_matches_uninterrupted(backend):
    app = REGISTRY["msort"]
    interrupted = _staged_session(app, backend)
    with pytest.raises(PropagationBudgetExceeded) as exc_info:
        interrupted.propagate(deadline=0.0)
    assert exc_info.value.pending > 0
    assert exc_info.value.reexecuted == 0
    resumed = interrupted.propagate()  # unbounded resume finishes the pass
    assert resumed.path == "propagate"

    uninterrupted = _staged_session(app, backend)
    uninterrupted.propagate()
    assert app.readback(interrupted.output) == app.readback(uninterrupted.output)
    assert interrupted.trace_size() == uninterrupted.trace_size()
    check_trace(interrupted.engine, expect_quiescent=True, expect_empty_queue=True)


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
def test_budget_single_step_resume_loop_matches_uninterrupted(backend):
    app = REGISTRY["msort"]
    interrupted = _staged_session(app, backend)
    interrupts = 0
    while True:
        try:
            interrupted.propagate(budget=1)
        except PropagationBudgetExceeded:
            interrupts += 1
            continue
        break
    assert interrupts > 0  # the change really was split across passes

    uninterrupted = _staged_session(app, backend)
    stats = uninterrupted.propagate()
    assert interrupts + 1 >= stats.reexecuted  # every pass made progress
    assert app.readback(interrupted.output) == app.readback(uninterrupted.output)
    assert interrupted.trace_size() == uninterrupted.trace_size()
