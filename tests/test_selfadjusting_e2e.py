"""End-to-end self-adjusting execution tests.

Compiles LML programs, runs them self-adjustingly, makes incremental
changes, and checks outputs after propagation -- covering the language
features beyond what the benchmark apps exercise.
"""

import pytest

from repro.api import Session
from repro.interp.marshal import ModListInput, ModVectorInput
from repro.interp.values import ConValue, deep_read, list_value_to_python
from repro.sac.modifiable import Modifiable


def test_scalar_pipeline():
    src = """
    val main : int $C -> int $C = fn x => (x + 1) * (x + 2)
    """
    sa = Session(src)
    x = sa.engine.make_input(3)
    out = sa.run(x)
    assert out.peek() == 20
    sa.engine.change(x, 10)
    sa.propagate()
    assert out.peek() == 132


def test_changeable_condition_switches_branches():
    src = """
    val main : (bool $C * int $C) -> int $C =
      fn (b, x) => if b then x + 1 else x - 1
    """
    sa = Session(src)
    b = sa.engine.make_input(True)
    x = sa.engine.make_input(10)
    out = sa.run((b, x))
    assert out.peek() == 11
    sa.engine.change(b, False)
    sa.propagate()
    assert out.peek() == 9
    sa.engine.change(x, 100)
    sa.propagate()
    assert out.peek() == 99


def test_changeable_tuple_projection():
    from repro.interp.marshal import from_python

    src = """
    val main = fn (p : (int * int) $C) => #1 p + #2 p
    """
    sa = Session(src)
    in_lty = sa.program.main_lty.children[0]
    p = from_python(sa.engine, in_lty, (3, 4))
    out = sa.run(p)
    assert out.peek() == 7
    # Replace the whole tuple (components are modifiables per the levels).
    sa.engine.change(p, from_python(sa.engine, in_lty, (10, 20)).peek())
    sa.propagate()
    assert out.peek() == 30


def test_case_on_changeable_datatype():
    src = """
    datatype shape = Circle of real | Square of real
    val main : shape $C -> real $C =
      fn s => case s of Circle r => r * r * 3.14 | Square w => w * w
    """
    sa = Session(src)
    s = sa.engine.make_input(ConValue("Square", 2.0))
    out = sa.run(s)
    assert out.peek() == 4.0
    sa.engine.change(s, ConValue("Circle", 1.0))
    sa.propagate()
    assert abs(out.peek() - 3.14) < 1e-12


def test_nested_changeable_structures():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun sumlist l = case l of Nil => 0 | Cons (h, t) => h + sumlist t
    val main : cell $C -> int $C = sumlist
    """
    sa = Session(src)
    xs = ModListInput(sa.engine, [1, 2, 3, 4])
    out = sa.run(xs.head)
    assert out.peek() == 10
    xs.insert(2, 100)
    sa.propagate()
    assert out.peek() == 110
    xs.remove(0)
    sa.propagate()
    assert out.peek() == 109


def test_sharing_one_mod_two_consumers():
    src = """
    val main : int $C -> (int $C * int $C) =
      fn x => (x + 1, x * 2)
    """
    sa = Session(src)
    x = sa.engine.make_input(5)
    out = sa.run(x)
    a, b = out
    assert a.peek() == 6 and b.peek() == 10
    sa.engine.change(x, 7)
    sa.propagate()
    assert a.peek() == 8 and b.peek() == 14


def test_imperative_reference_updates():
    # Per paper Figure 4, the *cell* is the changeable thing; its content
    # type stays stable at the top.
    src = """
    val main : int $C -> int $C =
      fn x => let val r = ref 17 in (r := 25; !r + x) end
    """
    sa = Session(src)
    x = sa.engine.make_input(1)
    out = sa.run(x)
    assert out.peek() == 26
    sa.engine.change(x, 40)
    sa.propagate()
    assert out.peek() == 65


def test_ref_of_changeable_content_is_rejected():
    from repro.lang.errors import LmlLevelError

    src = """
    val main : int $C -> int $C =
      fn x => let val r = ref x in !r end
    """
    with pytest.raises(LmlLevelError):
        Session(src)


def test_higher_order_changeable_result():
    src = """
    fun twice f = fn x => f (f x)
    val main : int $C -> int $C = twice (fn x => x + 3)
    """
    sa = Session(src)
    x = sa.engine.make_input(0)
    out = sa.run(x)
    assert out.peek() == 6
    sa.engine.change(x, 10)
    sa.propagate()
    assert out.peek() == 16


def test_vector_of_changeables_via_builtins():
    src = """
    val main : (int $C) vector -> int $C =
      fn v => vreduce (v, 0, fn (a, b) => a + b)
    """
    sa = Session(src)
    v = ModVectorInput(sa.engine, [1, 2, 3, 4, 5, 6, 7, 8])
    out = sa.run(v.value)
    assert out.peek() == 36
    before = sa.engine.meter.reads_executed
    v.set(3, 100)
    sa.propagate()
    assert out.peek() == 132
    # O(log n) combine reads re-executed, not O(n).
    assert sa.engine.meter.reads_executed - before <= 4


def test_unopt_and_coarse_agree_with_optimized():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h * 3, mapf t)
    val main : cell $C -> cell $C = mapf
    """
    outputs = []
    for options in (
        {},
        {"optimize": False},
        {"optimize": False, "coarse": True},
        {"memoize": False},
    ):
        sa = Session(src, **options)
        xs = ModListInput(sa.engine, [1, 2, 3])
        out = sa.run(xs.head)
        xs.insert(1, 50)
        sa.propagate()
        outputs.append(list_value_to_python(out))
    assert all(o == [3, 150, 6, 9] for o in outputs)


def test_propagation_count_scales_with_list_changes():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h + 1, mapf t)
    val main : cell $C -> cell $C = mapf
    """
    sa = Session(src)
    xs = ModListInput(sa.engine, list(range(500)))
    out = sa.run(xs.head)
    before = sa.engine.meter.reads_executed
    for i in range(5):
        xs.insert(100 * i, 10_000 + i)
        sa.propagate()
    # One read re-execution per insert: memoized splice, no cascade.
    assert sa.engine.meter.reads_executed - before == 5
    assert list_value_to_python(out) == [x + 1 for x in xs.to_python()]


def test_output_mod_identity_stable_across_propagations():
    """Consumers hold onto output modifiables across changes."""
    src = """
    val main : int $C -> int $C = fn x => x * x
    """
    sa = Session(src)
    x = sa.engine.make_input(2)
    out = sa.run(x)
    assert isinstance(out, Modifiable)
    first = out
    sa.engine.change(x, 3)
    sa.propagate()
    assert out is first and out.peek() == 9


def test_string_data_changeable():
    src = """
    val main : string $C -> string $C = fn s => s ^ "!"
    """
    sa = Session(src)
    s = sa.engine.make_input("hi")
    out = sa.run(s)
    assert out.peek() == "hi!"
    sa.engine.change(s, "bye")
    sa.propagate()
    assert out.peek() == "bye!"
