"""Marshalling and change-handle tests (repro.interp.marshal)."""

import pytest

from repro.core.pipeline import compile_program
from repro.interp.marshal import (
    BlockMatrixInput,
    ModListInput,
    ModMatrixInput,
    ModVectorInput,
    from_python,
    plain_list,
)
from repro.interp.values import ConValue, deep_read, list_value_to_python
from repro.sac.engine import Engine


def test_plain_list_roundtrip():
    value = plain_list([1, 2, 3])
    assert list_value_to_python(value) == [1, 2, 3]
    assert plain_list([]).tag == "Nil"


def test_modlist_basic_ops():
    engine = Engine()
    xs = ModListInput(engine, [1, 2, 3])
    assert len(xs) == 3
    assert xs.to_python() == [1, 2, 3]
    # Edit methods return the dirtied-read count: 0 with no readers.
    assert xs.insert(0, 0) == 0
    assert xs.to_python() == [0, 1, 2, 3]
    xs.insert(4, 9)
    assert xs.to_python() == [0, 1, 2, 3, 9]
    assert xs.get(2) == 2
    assert xs.remove(2) == 0
    assert xs.to_python() == [0, 1, 3, 9]
    assert xs.set(1, 100) == 0
    assert xs.to_python() == [0, 100, 3, 9]


def test_modlist_bounds():
    engine = Engine()
    xs = ModListInput(engine, [1])
    with pytest.raises(IndexError):
        xs.insert(5, 0)
    with pytest.raises(IndexError):
        xs.remove(1)
    with pytest.raises(IndexError):
        xs.get(1)
    with pytest.raises(IndexError):
        xs.set(1, 0)


def test_modlist_empty():
    engine = Engine()
    xs = ModListInput(engine, [])
    assert len(xs) == 0
    assert xs.to_python() == []
    xs.insert(0, 7)
    assert xs.to_python() == [7]


def test_modvector():
    engine = Engine()
    v = ModVectorInput(engine, [1.0, 2.0])
    assert v.to_python() == [1.0, 2.0]
    v.set(1, 5.0)
    assert v.get(1) == 5.0


def test_modmatrix():
    engine = Engine()
    m = ModMatrixInput(engine, [[1.0, 2.0], [3.0, 4.0]])
    assert m.shape == (2, 2)
    m.set(0, 1, 9.0)
    assert m.to_python() == [[1.0, 9.0], [3.0, 4.0]]


def test_block_matrix_roundtrip_and_set():
    engine = Engine()
    rows = [[float(i * 4 + j) for j in range(4)] for i in range(4)]
    bm = BlockMatrixInput(engine, rows, block=2)
    assert bm.to_python() == rows
    bm.set(3, 3, 99.0)
    assert bm.to_python()[3][3] == 99.0
    # Only one block mod changed.
    assert bm.blocks[1][1].peek().arg[1][1] == 99.0


def test_block_matrix_requires_divisible_size():
    engine = Engine()
    with pytest.raises(ValueError):
        BlockMatrixInput(engine, [[1.0, 2.0, 3.0]] * 3, block=2)


def test_deep_read_structures():
    engine = Engine()
    m = engine.make_input(ConValue("Cons", (1, engine.make_input(ConValue("Nil")))))
    assert deep_read(m) == ("Cons", (1, ("Nil",)))
    assert deep_read((1, 2.5, "x")) == (1, 2.5, "x")


def test_from_python_wraps_changeable_positions():
    src = "val main : ((real $C) vector) $C -> int = fn v => 0"
    program = compile_program(src)
    engine = Engine()
    in_lty = program.main_lty.children[0]
    value = from_python(engine, in_lty, [1.0, 2.0])
    # Outer wrap plus one mod per element.
    from repro.sac.modifiable import Modifiable

    assert isinstance(value, Modifiable)
    inner = value.peek()
    assert all(isinstance(x, Modifiable) for x in inner)


def test_from_python_conventional_mode_is_plain():
    src = "val main : (real $C) vector -> int = fn v => 0"
    program = compile_program(src)
    in_lty = program.main_lty.children[0]
    value = from_python(None, in_lty, [1.0, 2.0])
    assert value == (1.0, 2.0)
