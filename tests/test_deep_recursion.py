"""Deep-workload stress tests: the stack backend at CPython's default limit.

The interp and compiled backends nest one Python frame per traced cell,
so a cons chain of depth ``d`` needs a recursion limit comfortably above
``d`` -- for both the initial run and any deep re-execution during
propagation.  The stack backend (:mod:`repro.compile.stackmachine`) runs
the same programs with an explicit control stack and bounded Python
recursion, so the *same* workloads complete at CPython's default limit
of 1000.

These tests pin both sides of that contract:

* the stack backend runs and propagates a 10^5-element cons chain and a
  deep mergesort with ``sys.setrecursionlimit(1000)`` in effect;
* at that limit the recursive backends overflow -- ``RecursionError``
  during the initial run, and the engine's typed
  :class:`RecursionReexecutionError` (whose message recommends
  ``backend="stack"``) when the overflow happens *during propagation*;
* a :class:`RecursionReexecutionError` abort is transactional: raising
  the limit and re-propagating completes the update.

The engine constructor raises the process recursion limit (see
``Engine.RECURSION_LIMIT``), so each test builds its instance first and
only then clamps the limit down.

Environment knobs:

* ``REPRO_DEEP_N`` -- cons-chain length for the in-suite stress tests
  (default 100000);
* ``REPRO_DEEP_STRESS=1`` -- also run the full mergesort-at-depth-10^5
  test (several minutes; sized by ``REPRO_DEEP_STRESS_N``).
"""

import os
import random
import sys

import pytest

from repro.apps import REGISTRY
from repro.interp.values import list_value_to_python
from repro.sac.engine import Engine
from repro.sac.exceptions import RecursionReexecutionError

#: CPython's default recursion limit -- the bar the stack backend must
#: clear without help.
DEFAULT_LIMIT = 1000

DEEP_N = int(os.environ.get("REPRO_DEEP_N", "100000"))

RECURSIVE_BACKENDS = ["interp", "compiled"]


@pytest.fixture
def recursion_limit():
    """Restore the process recursion limit after the test (both the
    explicit clamps below and the one ``Engine.__init__`` applies)."""
    saved = sys.getrecursionlimit()
    yield
    sys.setrecursionlimit(saved)


def _build(name, n, backend, **options):
    app = REGISTRY[name]
    rng = random.Random(7)
    data = app.make_data(n, rng)
    engine = Engine()
    instance = app.instance(engine, backend=backend, **options)
    input_value, handle = app.make_sa_input(engine, data)
    return app, engine, instance, input_value, handle, rng


# ----------------------------------------------------------------------
# Stack backend: deep workloads complete at the default limit


def test_stack_deep_cons_chain_at_default_limit(recursion_limit):
    """Run and edit/propagate a ``DEEP_N``-element cons chain under the
    stack backend with the recursion limit clamped to CPython's default."""
    app, engine, instance, input_value, handle, _ = _build(
        "map", DEEP_N, "stack"
    )
    sys.setrecursionlimit(DEFAULT_LIMIT)
    output = instance.apply(input_value)
    assert list_value_to_python(output) == app.reference(handle.to_python())
    # Edits at the head, middle, and tail of the chain: the head edit is
    # the deep-re-execution worst case for the recursive backends.
    for index in (0, DEEP_N // 2, DEEP_N - 1):
        handle.set(index, 1_000_000_000 + index)
        engine.propagate()
        assert list_value_to_python(output) == app.reference(
            handle.to_python()
        )


def test_stack_deep_msort_at_default_limit(recursion_limit):
    """msort recursion depth scales with list length; n=1024 already
    overflows the recursive backends at the default limit (pinned below)
    while the stack backend runs and propagates it."""
    app, engine, instance, input_value, handle, rng = _build(
        "msort", 1024, "stack"
    )
    sys.setrecursionlimit(DEFAULT_LIMIT)
    output = instance.apply(input_value)
    assert list_value_to_python(output) == sorted(handle.to_python())
    for step in range(2):
        app.apply_change(handle, rng, step)
        engine.propagate()
        assert list_value_to_python(output) == sorted(handle.to_python())


# ----------------------------------------------------------------------
# Recursive backends: the same workloads overflow at the default limit


@pytest.mark.parametrize("backend", RECURSIVE_BACKENDS)
def test_recursive_backend_deep_chain_overflows(recursion_limit, backend):
    _, _, instance, input_value, _, _ = _build("map", DEEP_N, backend)
    sys.setrecursionlimit(DEFAULT_LIMIT)
    with pytest.raises(RecursionError):
        instance.apply(input_value)


@pytest.mark.parametrize("backend", RECURSIVE_BACKENDS)
def test_recursive_backend_deep_msort_overflows(recursion_limit, backend):
    _, _, instance, input_value, _, _ = _build("msort", 1024, backend)
    sys.setrecursionlimit(DEFAULT_LIMIT)
    with pytest.raises(RecursionError):
        instance.apply(input_value)


def test_interp_propagate_overflow_recommends_stack(recursion_limit):
    """Overflow *during propagation* raises the engine's typed
    :class:`RecursionReexecutionError`, its message recommends the stack
    backend, and the abort is transactional: raising the limit back up
    and re-propagating completes the update."""
    app, engine, instance, input_value, handle, _ = _build(
        "map", 5000, "interp", memoize=False
    )
    high_limit = sys.getrecursionlimit()
    output = instance.apply(input_value)  # at the engine's raised limit
    handle.set(0, 777_000_001)  # head edit: re-executes the whole chain
    sys.setrecursionlimit(DEFAULT_LIMIT)
    with pytest.raises(RecursionReexecutionError) as excinfo:
        engine.propagate()
    err = excinfo.value
    assert 'backend="stack"' in str(err)
    assert "REPRO_RECURSION_LIMIT" in str(err)
    assert err.consistent, "abort must leave the trace consistent"
    # Recovery: with headroom restored, propagation finishes the edit.
    sys.setrecursionlimit(high_limit)
    engine.propagate()
    assert list_value_to_python(output) == app.reference(handle.to_python())


# ----------------------------------------------------------------------
# Full-depth mergesort (minutes of runtime): opt-in via environment


@pytest.mark.skipif(
    not os.environ.get("REPRO_DEEP_STRESS"),
    reason="several-minute stress test; set REPRO_DEEP_STRESS=1 to run",
)
def test_stack_msort_full_depth_env_gated(recursion_limit):
    n = int(os.environ.get("REPRO_DEEP_STRESS_N", "100000"))
    app, engine, instance, input_value, handle, rng = _build(
        "msort", n, "stack"
    )
    sys.setrecursionlimit(DEFAULT_LIMIT)
    output = instance.apply(input_value)
    assert list_value_to_python(output) == sorted(handle.to_python())
    app.apply_change(handle, rng, 0)
    engine.propagate()
    assert list_value_to_python(output) == sorted(handle.to_python())
