"""Optimizer tests: the three rewrite rules of paper Section 3.4.

Includes property-based checks of Theorem 3.1: the rules are terminating
(every step shrinks the term) and confluent (random rewrite orders reach
alpha-equivalent normal forms).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sxml as S
from repro.core.optimize import (
    count_primitives,
    optimize,
    try_rules_cexpr,
    try_rules_expr,
)
from repro.core.pipeline import compile_program
from repro.core.sxmlutil import alpha_equal
from repro.lang.types import INT


def avar(name):
    return S.AVar(ty=INT, name=name)


def aconst(value):
    return S.AConst(ty=INT, value=value, kind="int")


def test_rule1_read_mod_let_write():
    # let m = mod (let r = prim in write r) in read m as x in write f(x)
    inner = S.CLet(
        name="r",
        bind=S.BPrim(ty=INT, op="+", args=[avar("a"), aconst(1)]),
        body=S.CWrite(atom=avar("r")),
    )
    term = S.CLet(
        name="m",
        bind=S.BMod(ty=INT, body=inner),
        body=S.CRead(
            src=avar("m"),
            binder="x",
            body=S.CLet(
                name="y",
                bind=S.BPrim(ty=INT, op="*", args=[avar("x"), aconst(2)]),
                body=S.CWrite(atom=avar("y")),
            ),
        ),
    )
    out = try_rules_cexpr(term)
    assert out is not None
    assert isinstance(out, S.CLet)
    assert isinstance(out.bind, S.BPrim) and out.bind.op == "+"
    assert out.name == "x"


def test_rule1_degenerate_write():
    # read (mod (write a)) as x in write f(x)  -->  [a/x]
    term = S.CLet(
        name="m",
        bind=S.BMod(ty=INT, body=S.CWrite(atom=avar("a"))),
        body=S.CRead(
            src=avar("m"),
            binder="x",
            body=S.CLet(
                name="y",
                bind=S.BPrim(ty=INT, op="*", args=[avar("x"), aconst(2)]),
                body=S.CWrite(atom=avar("y")),
            ),
        ),
    )
    out = try_rules_cexpr(term)
    assert isinstance(out, S.CLet)
    assert out.bind.args[0].name == "a"


def test_rule2_read_mod_write_back():
    # read (mod e) as x in write x  -->  e
    body = S.CRead(src=avar("src"), binder="v", body=S.CWrite(atom=avar("v")))
    term = S.CLet(
        name="m",
        bind=S.BMod(ty=INT, body=S.CLet(
            name="t",
            bind=S.BPrim(ty=INT, op="+", args=[avar("p"), avar("q")]),
            body=S.CWrite(atom=avar("t")),
        )),
        body=S.CRead(src=avar("m"), binder="x", body=S.CWrite(atom=avar("x"))),
    )
    out = try_rules_cexpr(term)
    assert isinstance(out, S.CLet)
    assert isinstance(out.bind, S.BPrim)


def test_rule3_mod_read_write():
    # let y = mod (read a as x in write x) in ret y  -->  ret a
    term = S.ELet(
        ty=INT,
        name="y",
        bind=S.BMod(
            ty=INT,
            body=S.CRead(src=avar("a"), binder="x", body=S.CWrite(atom=avar("x"))),
        ),
        body=S.ERet(ty=INT, atom=avar("y")),
    )
    out = try_rules_expr(term)
    assert isinstance(out, S.ERet)
    assert out.atom.name == "a"


def test_rules_do_not_fire_when_mod_used_twice():
    """Rule 1/2 require the modifiable to be consumed only by the read."""
    term = S.CLet(
        name="m",
        bind=S.BMod(ty=INT, body=S.CWrite(atom=avar("a"))),
        body=S.CRead(
            src=avar("m"),
            binder="x",
            # m escapes into the continuation: must NOT rewrite.
            body=S.CLet(
                name="p",
                bind=S.BTuple(ty=INT, items=[avar("x"), avar("m")]),
                body=S.CWrite(atom=avar("p")),
            ),
        ),
    )
    assert try_rules_cexpr(term) is None


def _random_normalize(expr, seed):
    """Drive the rules in a random order via randomized bottom-up sweeps."""
    rng = random.Random(seed)

    class RandomOpt:
        def __init__(self):
            self.changed = False

        def cexpr(self, e):
            # Randomize child-visit order effects by sometimes skipping the
            # root rewrite until a later sweep.
            if isinstance(e, S.CRead):
                e = S.CRead(src=e.src, binder=e.binder, binder_ty=e.binder_ty,
                            body=self.cexpr(e.body))
            elif isinstance(e, S.CLet):
                e = S.CLet(name=e.name, bind=self.bind(e.bind), body=self.cexpr(e.body))
            elif isinstance(e, S.CIf):
                e = S.CIf(cond=e.cond, then=self.cexpr(e.then), els=self.cexpr(e.els))
            elif isinstance(e, S.CCase):
                e = S.CCase(dt=e.dt, scrut=e.scrut, clauses=[
                    S.CaseClause(tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                                 body=self.cexpr(c.body)) for c in e.clauses
                ], default=self.cexpr(e.default) if e.default else None)
            elif isinstance(e, S.CLetRec):
                e = S.CLetRec(bindings=[(n, self.bind(l)) for n, l in e.bindings],
                              body=self.cexpr(e.body))
            if rng.random() < 0.7:
                new = try_rules_cexpr(e)
                if new is not None:
                    self.changed = True
                    return new
            return e

        def expr(self, e):
            if isinstance(e, S.ELet):
                e = S.ELet(ty=e.ty, name=e.name, bind=self.bind(e.bind),
                           body=self.expr(e.body))
            elif isinstance(e, S.ELetRec):
                e = S.ELetRec(ty=e.ty, bindings=[(n, self.bind(l)) for n, l in e.bindings],
                              body=self.expr(e.body))
            if rng.random() < 0.7:
                new = try_rules_expr(e)
                if new is not None:
                    self.changed = True
                    return new
            return e

        def bind(self, b):
            if isinstance(b, S.BMod):
                return S.BMod(ty=b.ty, body=self.cexpr(b.body))
            if isinstance(b, S.BLam):
                return S.BLam(ty=b.ty, param=b.param, param_ty=b.param_ty,
                              body=self.expr(b.body), param_spec=b.param_spec,
                              name_hint=b.name_hint)
            if isinstance(b, S.BIf):
                return S.BIf(ty=b.ty, cond=b.cond, then=self.expr(b.then),
                             els=self.expr(b.els))
            if isinstance(b, S.BCase):
                return S.BCase(ty=b.ty, dt=b.dt, scrut=b.scrut, clauses=[
                    S.CaseClause(tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                                 body=self.expr(c.body)) for c in b.clauses
                ], default=self.expr(b.default) if b.default else None)
            return b

    for _ in range(300):  # termination backstop (should converge fast)
        ro = RandomOpt()
        expr = ro.expr(expr)
        if not ro.changed:
            # One deterministic full pass to confirm normality.
            confirmed = optimize(expr)
            return confirmed
    raise AssertionError("random rewriting did not terminate")


_CORPUS = [
    """
    datatype cell = Nil | Cons of int * cell $C
    fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h + 1, mapf t)
    val main : cell $C -> cell $C = mapf
    """,
    """
    val main : (real $C * real $C) -> real $C = fn (a, b) => (a * b) / (a + b)
    """,
    """
    type matrix = ((real $C) vector) vector
    fun dot (r, c) = vreduce (vmap2 (r, c, fn (x, y) => x * y), 0.0, fn (x, y) => x + y)
    val main : (matrix * (real $C) vector) -> (real $C) vector =
      fn (m, v) => vmap (m, fn row => dot (row, v))
    """,
    """
    val main : bool $C -> int $C = fn b => if b then 1 else 2
    """,
]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, len(_CORPUS) - 1), st.integers(0, 2**32 - 1))
def test_confluence_random_orders_reach_same_normal_form(index, seed):
    """Theorem 3.1: arbitrary rewrite orders yield alpha-equivalent terms."""
    program = compile_program(_CORPUS[index], optimize_flag=False)
    unopt = program.sxml_translated
    deterministic = optimize(unopt)
    randomized = _random_normalize(unopt, seed)
    assert alpha_equal(deterministic, randomized)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, len(_CORPUS) - 1))
def test_rules_shrink(index):
    """Termination: the optimized term has no more primitives and the
    optimizer is idempotent."""
    program = compile_program(_CORPUS[index], optimize_flag=False)
    unopt = program.sxml_translated
    opt = optimize(unopt)
    c0, c1 = count_primitives(unopt), count_primitives(opt)
    assert c1["mod"] <= c0["mod"]
    assert c1["read"] <= c0["read"]
    assert c1["write"] <= c0["write"]
    again = optimize(opt)
    assert alpha_equal(opt, again)


def test_each_rule_removes_one_of_each():
    """Each rule eliminates one read, one write, and one mod (Section 3.4):
    on map, the rules remove the same number of each primitive."""
    program = compile_program(_CORPUS[0], optimize_flag=False)
    unopt = count_primitives(program.sxml_translated)
    opt = count_primitives(optimize(program.sxml_translated))
    removed = {k: unopt[k] - opt[k] for k in ("mod", "read", "write")}
    assert removed["mod"] == removed["read"] == removed["write"] > 0
