"""Order-maintenance timestamp tests (repro.sac.order)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sac.order import SPACING, Order, Stamp


def test_base_exists():
    order = Order()
    assert order.base.live
    assert order.n_live == 1


def test_insert_after_base_orders():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(a)  # between a and b
    assert order.base < a < c < b


def test_append_chain_never_relabels():
    order = Order()
    node = order.base
    for _ in range(1000):
        node = order.insert_after(node)
    assert order.n_relabels == 0
    assert order.n_live == 1001
    order.check()


def test_same_point_insertion_triggers_relabel_but_stays_ordered():
    order = Order()
    anchor = order.insert_after(order.base)
    end = order.insert_after(anchor)
    stamps = [anchor]
    # Insert always immediately after the anchor: worst case for labeling.
    for _ in range(500):
        stamps.insert(1, order.insert_after(anchor))
    assert order.n_relabels > 0
    order.check()
    # anchor < every inserted < end, and inserted are in reverse order of
    # creation (each new one lands closest to the anchor).
    labels = [s.label for s in stamps]
    assert labels == sorted(labels)
    assert stamps[-1] < end


def test_delete_splices_out():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(b)
    order.delete(b)
    assert not b.live
    assert a.next is c and c.prev is a
    assert order.n_live == 3
    order.check()


def test_delete_is_idempotent():
    order = Order()
    a = order.insert_after(order.base)
    order.delete(a)
    order.delete(a)
    assert order.n_live == 1


def test_cannot_delete_base():
    order = Order()
    with pytest.raises(ValueError):
        order.delete(order.base)


def test_cannot_insert_after_dead_stamp():
    order = Order()
    a = order.insert_after(order.base)
    order.delete(a)
    with pytest.raises(ValueError):
        order.insert_after(a)


def test_iter_between():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(b)
    d = order.insert_after(c)
    between = list(order.iter_between(a, d))
    assert between == [b, c]
    assert list(order.iter_between(a, None)) == [b, c, d]


def test_iter_between_safe_under_deletion():
    order = Order()
    a = order.insert_after(order.base)
    nodes = [order.insert_after(a)]
    for _ in range(5):
        nodes.append(order.insert_after(nodes[-1]))
    for node in order.iter_between(a, None):
        order.delete(node)
    assert order.n_live == 2  # base and a
    order.check()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10**6), st.booleans()), max_size=200))
def test_random_ops_match_reference(ops):
    """Random insert/delete sequences keep the order consistent with a
    reference Python list."""
    order = Order()
    reference = [order.base]  # mirrors the live order
    for pick, is_delete in ops:
        if is_delete and len(reference) > 1:
            index = 1 + pick % (len(reference) - 1)
            order.delete(reference.pop(index))
        else:
            index = pick % len(reference)
            new = order.insert_after(reference[index])
            reference.insert(index + 1, new)
    order.check()
    assert reference == list(order)
    labels = [s.label for s in reference]
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_adversarial_positions_stay_sorted(seed):
    rng = random.Random(seed)
    order = Order()
    live = [order.base]
    for _ in range(300):
        anchor = rng.choice(live)
        live.append(order.insert_after(anchor))
    order.check()
