"""Order-maintenance timestamp tests (repro.sac.order)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sac.order import BUCKET_CAPACITY, SPACING, Order, Stamp


def test_base_exists():
    order = Order()
    assert order.base.live
    assert order.n_live == 1


def test_insert_after_base_orders():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(a)  # between a and b
    assert order.base < a < c < b


def test_append_chain_never_relabels():
    order = Order()
    node = order.base
    for _ in range(1000):
        node = order.insert_after(node)
    assert order.n_relabels == 0
    assert order.n_live == 1001
    order.check()


def test_same_point_insertion_triggers_relabel_but_stays_ordered():
    order = Order()
    anchor = order.insert_after(order.base)
    end = order.insert_after(anchor)
    stamps = [anchor]
    # Insert always immediately after the anchor: worst case for labeling.
    for _ in range(500):
        stamps.insert(1, order.insert_after(anchor))
    assert order.n_relabels > 0
    order.check()
    # anchor < every inserted < end, and inserted are in reverse order of
    # creation (each new one lands closest to the anchor).
    labels = [s.label for s in stamps]
    assert labels == sorted(labels)
    assert stamps[-1] < end


def test_delete_splices_out():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(b)
    order.delete(b)
    assert not b.live
    assert a.next is c and c.prev is a
    assert order.n_live == 3
    order.check()


def test_delete_is_idempotent():
    order = Order()
    a = order.insert_after(order.base)
    order.delete(a)
    order.delete(a)
    assert order.n_live == 1


def test_cannot_delete_base():
    order = Order()
    with pytest.raises(ValueError):
        order.delete(order.base)


def test_cannot_insert_after_dead_stamp():
    order = Order()
    a = order.insert_after(order.base)
    order.delete(a)
    with pytest.raises(ValueError):
        order.insert_after(a)


def test_iter_between():
    order = Order()
    a = order.insert_after(order.base)
    b = order.insert_after(a)
    c = order.insert_after(b)
    d = order.insert_after(c)
    between = list(order.iter_between(a, d))
    assert between == [b, c]
    assert list(order.iter_between(a, None)) == [b, c, d]


def test_iter_between_safe_under_deletion():
    order = Order()
    a = order.insert_after(order.base)
    nodes = [order.insert_after(a)]
    for _ in range(5):
        nodes.append(order.insert_after(nodes[-1]))
    for node in order.iter_between(a, None):
        order.delete(node)
    assert order.n_live == 2  # base and a
    order.check()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10**6), st.booleans()), max_size=200))
def test_random_ops_match_reference(ops):
    """Random insert/delete sequences keep the order consistent with a
    reference Python list."""
    order = Order()
    reference = [order.base]  # mirrors the live order
    for pick, is_delete in ops:
        if is_delete and len(reference) > 1:
            index = 1 + pick % (len(reference) - 1)
            order.delete(reference.pop(index))
        else:
            index = pick % len(reference)
            new = order.insert_after(reference[index])
            reference.insert(index + 1, new)
    order.check()
    assert reference == list(order)
    labels = [s.label for s in reference]
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_adversarial_positions_stay_sorted(seed):
    rng = random.Random(seed)
    order = Order()
    live = [order.base]
    for _ in range(300):
        anchor = rng.choice(live)
        live.append(order.insert_after(anchor))
    order.check()


# ----------------------------------------------------------------------
# Seeded stress: interleaved inserts/deletes vs a naive list reference


def test_seeded_random_interleaving_matches_reference():
    """Long seeded interleaving of insert_after (in short monotone runs,
    like re-execution) and deletes, checked against a plain Python list
    mirror and the structural invariant checker at intervals."""
    rng = random.Random(20260806)
    order = Order()
    reference = [order.base]
    for step in range(4000):
        if rng.random() < 0.35 and len(reference) > 1:
            index = rng.randrange(1, len(reference))
            order.delete(reference.pop(index))
        else:
            index = rng.randrange(len(reference))
            anchor = reference[index]
            for _ in range(rng.randrange(1, 8)):
                anchor = order.insert_after(anchor)
                index += 1
                reference.insert(index, anchor)
        if step % 500 == 0:
            order.check()
            assert reference == list(order)
    order.check()
    assert reference == list(order)
    keys = [s.key for s in reference]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)
    stats = order.stats()
    assert stats["live_stamps"] == len(reference) == order.n_live
    # Two-level structure: the stamps are spread over many buckets, each
    # within capacity, and the dead ones went through the free-list.
    assert stats["buckets"] >= len(reference) // (BUCKET_CAPACITY + 1)
    bucket = order._first_bucket
    while bucket is not None:
        assert 0 <= bucket.count <= BUCKET_CAPACITY
        bucket = bucket.next
    assert stats["stamps_reused"] > 0


def test_forced_relabel_density_same_point():
    """Repeated insertion at one point is the labeling worst case: it
    forces local respaces (and bucket splits) constantly.  The structure
    must stay totally ordered, every relabel must bump the epoch, and the
    relabel count must stay amortized sub-linear in the insert count."""
    order = Order()
    anchor = order.insert_after(order.base)
    end = order.insert_after(anchor)
    inserted = [order.insert_after(anchor) for _ in range(2000)]
    order.check()
    stats = order.stats()
    assert stats["relabels"] > 50  # the pattern really forces relabels
    assert stats["relabels"] < 2000  # ... but amortization keeps them rare
    assert stats["epoch"] == stats["relabels"]
    # Later inserts land closer to the anchor: reverse creation order.
    keys = [s.key for s in reversed(inserted)]
    assert keys == sorted(keys)
    assert anchor.key < keys[0] and keys[-1] < end.key


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_delete_range_matches_per_stamp_deletes(seed):
    """Bulk delete_range(a, b) must leave exactly the state that per-stamp
    deletes of the strict interior would: same survivors, same liveness
    flags, same counts, valid structure."""
    rng = random.Random(seed)
    order = Order()
    reference = [order.base]
    for _ in range(rng.randrange(2, 120)):
        index = rng.randrange(len(reference))
        reference.insert(index + 1, order.insert_after(reference[index]))
    i = rng.randrange(len(reference))
    open_ended = rng.random() < 0.3
    if open_ended:
        j, b = len(reference), None
    else:
        j = rng.randrange(i, len(reference))
        b = reference[j]
    interior = reference[i + 1 : j]
    order.delete_range(reference[i], b)
    for stamp in interior:
        assert not stamp.live
        assert stamp.owner is None
    survivors = reference[: i + 1] + reference[max(j, i + 1) :]
    assert list(order) == survivors
    assert order.n_live == len(survivors)
    order.check()
    # Deleting an empty range is a no-op.
    order.delete_range(reference[i], b)
    assert list(order) == survivors
    order.check()
