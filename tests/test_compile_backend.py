"""The closure-compilation backend, unit-tested.

``tests/test_backends_differential.py`` asserts meter-exact equivalence
with the interpreter across the whole application registry; this file
covers the pieces individually: frame/slot variable resolution (including
deep static-link chains), compiled closures' memo identity, the pipeline's
case-dispatch index, the structural ``ConValue`` hash, and the performance
pin that justifies the backend's existence.
"""

import random
import time

import pytest

from repro.api import Session
from repro.apps import REGISTRY
from repro.backends import BACKENDS, resolve_backend
from repro.compile import CompClosure, CompiledSelfAdjusting
from repro.core.pipeline import compile_program
from repro.interp.marshal import ModListInput
from repro.interp.values import ConValue
from repro.sac.api import memo_key
from repro.sac.engine import Engine


# ----------------------------------------------------------------------
# ConValue hashing (regression: __hash__ used id(self.arg) while __eq__
# compared structurally, so equal values landed in different hash buckets)


def test_convalue_hash_is_structural():
    a = ConValue("Cons", (1, 2))
    b = ConValue("Cons", (1, 2))
    assert a == b
    assert hash(a) == hash(b)


def test_convalue_hash_respects_set_semantics():
    values = {ConValue("Leaf", 3), ConValue("Leaf", 3), ConValue("Leaf", 4)}
    assert len(values) == 2
    table = {ConValue("Nil"): "empty"}
    assert table[ConValue("Nil")] == "empty"


def test_convalue_nested_hash():
    inner = ConValue("Some", 1)
    assert hash(ConValue("Box", inner)) == hash(ConValue("Box", ConValue("Some", 1)))


# ----------------------------------------------------------------------
# Backend selection


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "interp"
    monkeypatch.setenv("REPRO_BACKEND", "compiled")
    assert resolve_backend() == "compiled"
    # An explicit request beats the environment ...
    assert resolve_backend("interp") == "interp"
    # ... and an empty variable counts as unset.
    monkeypatch.setenv("REPRO_BACKEND", "")
    assert resolve_backend() == "interp"
    assert set(BACKENDS) == {"interp", "compiled", "stack"}


def test_unknown_backend_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "jit")
    with pytest.raises(ValueError):
        resolve_backend()
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    program = compile_program("val main : int $C -> int $C = fn x => x + 1")
    with pytest.raises(ValueError):
        Session(program, backend="jit")


# ----------------------------------------------------------------------
# Staged execution


def run_compiled(src, *, backend="compiled", **kwargs):
    return Session(src, backend=backend, **kwargs)


def test_scalar_program_compiles_and_propagates():
    sa = run_compiled("val main : int $C -> int $C = fn x => (x + 1) * (x + 2)")
    x = sa.make_input(3)
    out = sa.run(x)
    assert out.peek() == 20
    sa.edit(x, 10)
    sa.propagate()
    assert out.peek() == 132


def test_deep_static_link_chain():
    # Four nested lambdas: the innermost body reads variables at static
    # depths 0..3, exercising the slot accessors beyond the unrolled
    # depth-2 fast paths.
    sa = run_compiled(
        """
        val add4 : int -> int -> int -> int -> int =
          fn a => fn b => fn c => fn d => ((a * 1000 + b * 100) + c * 10) + d
        val main : int $C -> int $C = fn x => add4 1 2 3 x
        """
    )
    x = sa.make_input(4)
    out = sa.run(x)
    assert out.peek() == 1234
    sa.edit(x, 9)
    sa.propagate()
    assert out.peek() == 1239


def test_case_dispatch_and_recursion():
    sa = run_compiled(
        """
        datatype cell = Nil | Cons of int * cell $C
        fun sumlist l = case l of Nil => 0 | Cons (h, t) => h + sumlist t
        val main : cell $C -> int $C = sumlist
        """
    )
    xs = ModListInput(sa.engine, [1, 2, 3, 4])
    out = sa.run(xs.head)
    assert out.peek() == 10
    xs.insert(2, 100)
    sa.propagate()
    assert out.peek() == 110
    xs.remove(0)
    sa.propagate()
    assert out.peek() == 109


def test_compiled_closure_memo_identity():
    clo = CompClosure(lambda frame, arg: arg, [None], "f")
    other = CompClosure(lambda frame, arg: arg, [None], "f")
    assert clo.memo_key() is clo is memo_key(clo)
    assert clo.memo_key() != other.memo_key()


def test_compiled_backend_rejects_non_function():
    rt = CompiledSelfAdjusting(Engine())
    with pytest.raises(Exception):
        rt.apply(42, 1)


# ----------------------------------------------------------------------
# The pipeline's case-dispatch index (used by both backends)


def test_pipeline_indexes_case_dispatch():
    from repro.core import sxml as S

    program = compile_program(
        """
        datatype cell = Nil | Cons of int * cell $C
        fun sumlist l = case l of Nil => 0 | Cons (h, t) => h + sumlist t
        val main : cell $C -> int $C = sumlist
        """
    )

    found = []

    def walk(node):
        if isinstance(node, (S.BCase, S.CCase)):
            found.append(node)
        if hasattr(node, "__dataclass_fields__"):
            for name in node.__dataclass_fields__:
                child = getattr(node, name)
                for item in child if isinstance(child, (list, tuple)) else [child]:
                    if hasattr(item, "__dataclass_fields__"):
                        walk(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if hasattr(sub, "__dataclass_fields__"):
                                walk(sub)

    walk(program.sxml_translated)
    walk(program.sxml_conventional)
    assert found, "expected at least one case node"
    for node in found:
        assert node.tag_map is not None
        assert set(node.tag_map) == {c.tag for c in node.clauses}


# ----------------------------------------------------------------------
# The performance pin: staging must beat tree-walking


def _best_initial_run(backend, n=64, repeats=3):
    app = REGISTRY["msort"]
    best = float("inf")
    for attempt in range(repeats):
        rng = random.Random(0)
        data = app.make_data(n, rng)
        engine = Engine()
        instance = app.instance(engine, backend=backend)
        input_value, _ = app.make_sa_input(engine, data)
        start = time.perf_counter()
        instance.apply(input_value)
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_initial_run_is_faster_than_interp():
    """The backend's raison d'etre (and the figure-6 overhead pin):
    identical engine work, so any difference is pure dispatch cost --
    the staged closures must win.  The full >=2x claim is measured by
    ``benchmarks/bench_backend_speedup.py``; here we pin the direction
    with headroom so the suite stays robust on loaded CI machines."""
    interp = _best_initial_run("interp")
    compiled = _best_initial_run("compiled")
    assert compiled < interp, (
        f"compiled initial run ({compiled:.4f}s) not faster than "
        f"interp ({interp:.4f}s)"
    )
