"""Pretty-printer and bench-report formatting tests."""

from repro.bench.report import format_normalized, format_series, format_table
from repro.bench.runner import BenchRow
from repro.core.pipeline import compile_program
from repro.core.pretty import pretty_expr
from repro.testing import values_close


def test_pretty_prints_paper_style_primitives():
    source = """
    val main : (real $C * real $C) -> real $C = fn (a, b) => a * b
    """
    text = compile_program(source).dump_translated()
    assert "mod (" in text
    assert "read" in text and " as " in text and " in" in text
    assert "write" in text


def test_pretty_conventional_has_no_primitives():
    source = "val main = fn x => x + 1"
    text = compile_program(source).dump_conventional()
    assert "mod (" not in text and "read " not in text


def test_pretty_case_and_letrec():
    source = """
    datatype t = A | B of int
    fun f x = case x of A => 0 | B n => n + f A
    val main = f
    """
    text = compile_program(source).dump_conventional()
    assert "fun f" in text
    assert "case" in text and "A =>" in text and "B" in text


def test_format_table_columns():
    row = BenchRow(name="map", n=100, conv_run=0.5, sa_run=1.0, avg_prop=0.001)
    text = format_table([row], "demo")
    assert "map(100)" in text
    assert "2.0" in text  # overhead
    assert "500.0" in text  # speedup


def test_format_table_handles_zero_propagation():
    row = BenchRow(name="t", n=1, conv_run=0.5, sa_run=1.0, avg_prop=0.0)
    assert row.speedup == float("inf")
    format_table([row])  # must not raise


def test_format_series_alignment():
    text = format_series("title", [1, 2], {"a": [0.5, 1.0], "b": [3.0, 4.0]})
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_normalized_baseline_is_one():
    text = format_normalized(
        "cmp", ["x"], {"base": [2.0], "other": [4.0]}, baseline="base"
    )
    assert "1.00" in text and "2.00" in text


def test_values_close_structures():
    assert values_close([1, 2.0], (1, 2.0 + 1e-12))
    assert not values_close([1, 2.0], [1, 2.1])
    assert values_close(("a", (1.0,)), ("a", (1.0,)))
    assert not values_close([1, 2], [1, 2, 3])
