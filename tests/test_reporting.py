"""Pretty-printer and bench-report formatting tests."""

from repro.bench.report import format_normalized, format_series, format_table
from repro.bench.runner import BenchRow
from repro.core.pipeline import compile_program
from repro.core.pretty import pretty_expr
from repro.api import values_close


def test_pretty_prints_paper_style_primitives():
    source = """
    val main : (real $C * real $C) -> real $C = fn (a, b) => a * b
    """
    text = compile_program(source).dump_translated()
    assert "mod (" in text
    assert "read" in text and " as " in text and " in" in text
    assert "write" in text


def test_pretty_conventional_has_no_primitives():
    source = "val main = fn x => x + 1"
    text = compile_program(source).dump_conventional()
    assert "mod (" not in text and "read " not in text


def test_pretty_case_and_letrec():
    source = """
    datatype t = A | B of int
    fun f x = case x of A => 0 | B n => n + f A
    val main = f
    """
    text = compile_program(source).dump_conventional()
    assert "fun f" in text
    assert "case" in text and "A =>" in text and "B" in text


def test_format_table_columns():
    row = BenchRow(name="map", n=100, conv_run=0.5, sa_run=1.0, avg_prop=0.001)
    text = format_table([row], "demo")
    assert "map(100)" in text
    assert "2.0" in text  # overhead
    assert "500.0" in text  # speedup


def test_format_table_handles_zero_propagation():
    row = BenchRow(name="t", n=1, conv_run=0.5, sa_run=1.0, avg_prop=0.0)
    assert row.speedup == float("inf")
    format_table([row])  # must not raise


def test_format_series_alignment():
    text = format_series("title", [1, 2], {"a": [0.5, 1.0], "b": [3.0, 4.0]})
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_normalized_baseline_is_one():
    text = format_normalized(
        "cmp", ["x"], {"base": [2.0], "other": [4.0]}, baseline="base"
    )
    assert "1.00" in text and "2.00" in text


def test_values_close_structures():
    assert values_close([1, 2.0], (1, 2.0 + 1e-12))
    assert not values_close([1, 2.0], [1, 2.1])
    assert values_close(("a", (1.0,)), ("a", (1.0,)))
    assert not values_close([1, 2], [1, 2, 3])


# ----------------------------------------------------------------------
# Meter counter accuracy (hand-counted engine scenario)


def test_meter_counts_chain_scenario():
    from repro.sac import Engine

    engine = Engine()
    m = engine.make_input(1)
    prev = m
    for _ in range(3):
        prev = engine.mod(
            lambda dest, p=prev: engine.read(p, lambda v: engine.write(dest, v + 1))
        )
    meter = engine.meter
    assert meter.mods_created == 4  # the input + three mods
    assert meter.reads_executed == 3
    assert meter.writes == 3
    assert meter.changed_writes == 3  # first writes always change
    assert meter.edges_reexecuted == 0
    assert meter.live_edges == 3

    engine.change(m, 10)
    assert engine.propagate() == 3  # the whole chain re-executes
    assert meter.edges_reexecuted == 3
    # Re-execution re-runs the reader *in place*: fresh `read` calls are
    # counted separately from edge re-executions.
    assert meter.reads_executed == 3
    assert meter.writes == 6 and meter.changed_writes == 6
    assert meter.live_edges == 3  # old edges discarded, new recorded
    assert meter.mods_created == 4  # no new modifiables


def test_meter_counts_respect_write_cutoff():
    from repro.sac import Engine

    engine = Engine()
    m = engine.make_input(3)
    absval = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, abs(v)))
    )
    engine.mod(
        lambda dest: engine.read(absval, lambda v: engine.write(dest, v + 1))
    )
    engine.change(m, -3)
    engine.propagate()
    meter = engine.meter
    assert meter.edges_reexecuted == 1  # cutoff: downstream never re-ran
    assert meter.writes == 3  # two initial + one re-executed
    assert meter.changed_writes == 2  # the re-written abs value was equal


def test_meter_snapshot_and_reset():
    from repro.sac import Engine

    engine = Engine()
    engine.make_input(1)
    snap = engine.meter.snapshot()
    assert snap["mods_created"] == 1
    snap["mods_created"] = 99  # a copy, not a view
    assert engine.meter.mods_created == 1
    engine.meter.reset()
    assert engine.meter.snapshot()["mods_created"] == 0


# ----------------------------------------------------------------------
# Per-phase report formatting


def _phased_row():
    row = BenchRow(name="msort", n=64, conv_run=0.5, sa_run=1.0, avg_prop=0.01)
    row.extra["phases"] = {
        "initial-run": {
            "seconds": 1.0,
            "samples": 1,
            "counters": {"reads_executed": 120, "writes": 80, "memo_misses": 40},
        },
        "propagation": {
            "seconds": 0.002,
            "samples": 8,
            "counters": {"edges_reexecuted": 7, "memo_hits": 5},
        },
    }
    return row


def test_format_phases_renders_counters():
    from repro.bench import format_phases

    text = format_phases([_phased_row()], "Per-phase engine work")
    lines = text.splitlines()
    assert lines[0] == "Per-phase engine work"
    assert "reads" in lines[1] and "reexec" in lines[1] and "memo hit" in lines[1]
    initial = next(l for l in lines if "initial-run" in l)
    assert "msort(64)" in initial and "120" in initial and "80" in initial
    prop = next(l for l in lines if "propagation" in l)
    assert "7" in prop and "5" in prop


def test_format_phases_skips_rows_without_phase_data():
    from repro.bench import format_phases

    bare = BenchRow(name="map", n=10, conv_run=0.1, sa_run=0.2, avg_prop=0.001)
    text = format_phases([bare, _phased_row()])
    assert "map(10)" not in text
    assert "msort(64)" in text


def test_measure_app_records_phases():
    from repro.apps import REGISTRY
    from repro.api import measure_app

    row = measure_app(
        REGISTRY["map"], 12, prop_samples=2, seed=0, skip_conventional=True
    )
    phases = row.phases
    assert set(phases) == {"initial-run", "propagation"}
    assert phases["initial-run"]["counters"]["reads_executed"] > 0
    assert phases["propagation"]["samples"] == 2
    assert phases["propagation"]["counters"]["edges_reexecuted"] > 0
