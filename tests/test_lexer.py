"""Lexer tests (repro.lang.lexer)."""

import pytest

from repro.lang.errors import LmlSyntaxError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop eof


def values(source):
    return [t.value for t in tokenize(source)][:-1]


def test_keywords_and_idents():
    assert kinds("fun map x") == ["fun", "ident", "ident"]
    assert kinds("datatype val let in end") == ["datatype", "val", "let", "in", "end"]


def test_integers():
    assert values("0 42 1000000") == [0, 42, 1000000]
    toks = tokenize("~5")
    assert toks[0].kind == "int" and toks[0].value == -5


def test_reals():
    assert values("1.5 0.25") == [1.5, 0.25]
    toks = tokenize("~2.5")
    assert toks[0].value == -2.5
    assert tokenize("1e3")[0].value == 1000.0
    assert tokenize("2.5e~1")[0].value == 0.25


def test_int_vs_real_kinds():
    assert kinds("1 1.0") == ["int", "real"]


def test_strings_with_escapes():
    toks = tokenize(r'"hello\nworld" "a\"b"')
    assert toks[0].value == "hello\nworld"
    assert toks[1].value == 'a"b'


def test_unterminated_string():
    with pytest.raises(LmlSyntaxError):
        tokenize('"abc')


def test_symbols_longest_match():
    assert kinds("=> -> := <= >= <>") == ["=>", "->", ":=", "<=", ">=", "<>"]
    assert kinds("< = >") == ["<", "=", ">"]


def test_level_qualifiers():
    assert kinds("int $C vector $S") == ["ident", "$C", "ident", "$S"]


def test_tyvars():
    toks = tokenize("'a 'b2")
    assert toks[0].kind == "tyvar" and toks[0].value == "'a"
    assert toks[1].value == "'b2"


def test_comments_nest():
    assert kinds("1 (* outer (* inner *) still out *) 2") == ["int", "int"]


def test_unterminated_comment():
    with pytest.raises(LmlSyntaxError):
        tokenize("(* not closed")


def test_unexpected_character():
    with pytest.raises(LmlSyntaxError):
        tokenize("a ` b")


def test_spans_track_lines():
    toks = tokenize("a\n  b")
    assert toks[0].span.line == 1
    assert toks[1].span.line == 2
    assert toks[1].span.col == 3


def test_wildcard_and_underscore_idents():
    assert kinds("_ _x x_") == ["_", "ident", "ident"]


def test_projection_tokens():
    assert kinds("#1 x") == ["#", "int", "ident"]
