"""Conventional-executable semantics tests.

Compiles small LML programs and runs the pre-translation SXML through the
conventional interpreter, exercising the whole front/middle end (parser,
inference, monomorphization, match compilation, A-normalization) plus the
baseline interpreter -- without self-adjustment.
"""

import pytest

from repro.core.pipeline import compile_program
from repro.interp.values import ConValue, MatchFailure, deep_read


def run(source, *args):
    program = compile_program(source)
    instance = program.conventional_instance()
    result = instance.main
    for arg in args:
        result = instance.interp.apply(result, arg)
    return result


def test_arithmetic():
    assert run("val main = fn x => (x + 2) * 3 - 1", 4) == 17
    assert run("val main = fn x => x div 4 + x mod 4", 10) == 4
    assert abs(run("val main = fn x => x / 4.0", 10.0) - 2.5) < 1e-12


def test_unary_and_bool():
    assert run("val main = fn x => ~x", 5) == -5
    assert run("val main = fn b => not b", True) is False
    assert run("val main = fn x => x > 2 andalso x < 5", 3) is True
    assert run("val main = fn x => x > 2 andalso x < 5", 7) is False
    assert run("val main = fn x => x < 0 orelse x > 10", -1) is True


def test_math_prims():
    assert run("val main = fn x => sqrt x", 9.0) == 3.0
    assert run("val main = fn x => floor x", 3.7) == 3
    assert run("val main = fn x => toReal x + 0.5", 2) == 2.5
    assert run("val main = fn x => rpow (x, 3.0)", 2.0) == 8.0


def test_string_concat():
    assert run('val main = fn s => s ^ "!"', "hi") == "hi!"


def test_closures_capture():
    src = """
    fun add x y = x + y
    val add3 = add 3
    val main = fn z => add3 z
    """
    assert run(src, 4) == 7


def test_recursion_factorial():
    src = """
    fun fact n = if n = 0 then 1 else n * fact (n - 1)
    val main = fact
    """
    assert run(src, 10) == 3628800


def test_mutual_recursion():
    src = """
    fun even n = if n = 0 then true else odd (n - 1)
    and odd n = if n = 0 then false else even (n - 1)
    val main = even
    """
    assert run(src, 41) is False


def test_tail_style_loop():
    src = """
    fun loop (i, acc) = if i = 0 then acc else loop (i - 1, acc + i)
    val main = fn n => loop (n, 0)
    """
    assert run(src, 100) == 5050


def test_case_on_datatype():
    src = """
    datatype shape = Circle of real | Square of real | Point
    val main = fn s =>
      case s of
        Circle r => r * r * 3.0
      | Square w => w * w
      | Point => 0.0
    """
    assert run(src, ConValue("Square", 4.0)) == 16.0
    assert run(src, ConValue("Point")) == 0.0


def test_nested_patterns():
    src = """
    datatype cell = Nil | Cons of int * cell
    val main = fn l =>
      case l of
        Cons (a, Cons (b, rest)) => a * 100 + b
      | Cons (a, Nil) => a
      | Nil => 0
    """
    two = ConValue("Cons", (3, ConValue("Cons", (7, ConValue("Nil")))))
    assert run(src, two) == 307
    one = ConValue("Cons", (9, ConValue("Nil")))
    assert run(src, one) == 9


def test_constant_patterns():
    src = """
    val main = fn n =>
      case n of
        0 => 100
      | 1 => 200
      | k => k
    """
    assert run(src, 0) == 100
    assert run(src, 1) == 200
    assert run(src, 42) == 42


def test_wildcard_and_default():
    src = """
    datatype t = A | B | C
    val main = fn x => case x of A => 1 | _ => 9
    """
    assert run(src, ConValue("A")) == 1
    assert run(src, ConValue("C")) == 9


def test_inexhaustive_match_fails_at_runtime():
    src = """
    datatype t = A | B
    val main = fn x => case x of A => 1
    """
    with pytest.raises(MatchFailure):
        run(src, ConValue("B"))


def test_tuple_construction_and_projection():
    src = "val main = fn (p : int * string) => (#2 p, #1 p)"
    assert run(src, (1, "x")) == ("x", 1)


def test_references_sequencing():
    src = """
    val main = fn n =>
      let
        val r = ref 0
      in
        (r := n + 1; r := !r * 2; !r)
      end
    """
    assert run(src, 10) == 22


def test_vectors():
    src = """
    val main = fn n =>
      let
        val v = vtabulate (n, fn i => i * i)
      in
        (vlength v, vsub (v, 3), vreduce (v, 0, fn (a, b) => a + b))
      end
    """
    assert run(src, 5) == (5, 9, 30)


def test_vmap_vmap2():
    src = """
    val main = fn n =>
      let
        val v = vtabulate (n, fn i => i)
        val w = vmap (v, fn x => x * 10)
      in
        vmap2 (v, w, fn (a, b) => a + b)
      end
    """
    assert run(src, 4) == (0, 11, 22, 33)


def test_vreduce_empty_returns_identity():
    src = """
    val main = fn u => vreduce (vtabulate (0, fn i => i), 42, fn (a, b) => a + b)
    """
    assert run(src, ()) == 42


def test_shadowing():
    src = """
    val x = 1
    val main = fn y => let val x = 10 in x + y end
    """
    assert run(src, 5) == 15


def test_higher_order_functions():
    src = """
    fun compose (f, g) = fn x => f (g x)
    val main = compose (fn x => x + 1, fn x => x * 2)
    """
    assert run(src, 5) == 11


def test_polymorphic_function_at_two_types():
    src = """
    fun pair x = (x, x)
    val main = fn u => (pair 1, pair true)
    """
    assert run(src, ()) == ((1, 1), (True, True))


def test_deep_recursion_ok():
    src = """
    fun build n = if n = 0 then 0 else 1 + build (n - 1)
    val main = build
    """
    assert run(src, 20000) == 20000
