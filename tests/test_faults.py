"""Fault injection: the injector itself, failure events, and the chaos
suite (every app x both backends x every site type x both recovery modes).

The chaos acceptance property: a deterministic fault planted at any trace
site during change propagation, followed by ``rollback`` or ``rebuild``
recovery and the remaining edits, yields exactly the output of a
from-scratch run on the final data, with the trace passing the structural
invariant checker throughout.
"""

import random

import pytest

from repro.api import Session
from repro.apps import REGISTRY
from repro.obs import EventLog, FanoutHook
from repro.obs.faults import (
    CORRUPTIONS,
    SITES,
    ChaosResult,
    FaultInjector,
    PlantedFault,
    SiteCounter,
    chaos_app,
    chaos_journal,
    chaos_persist,
)
from repro.sac import Engine, ReexecutionError

# Input sizes per app family, chosen tiny: every chaos scenario replays a
# full run plus an oracle run, and the suite multiplies sites x positions
# x modes x backends.  (Matrix apps square their input; the raytracer's n
# is the image size.)
SIZES = {
    "map": 12,
    "filter": 12,
    "reverse": 12,
    "split": 12,
    "qsort": 12,
    "msort": 12,
    "vec-reduce": 12,
    "vec-mult": 12,
    "mat-vec-mult": 4,
    "mat-add": 4,
    "transpose": 4,
    "mat-mult": 3,
    "block-mat-mult": 8,  # must be a multiple of the block size
    "raytracer": 4,
}
# Seeds picked so the probed change stream actually re-executes reads
# (e.g. the raytracer's seed-0 changes all cut off at this size).
SEEDS = {"raytracer": 1}
# Apps whose change propagation is *free* (zero re-executions: the output
# shares the input's modifiables, see test_apps.py): propagation runs no
# user code, so there is no site to inject a fault at.
FREE_APPS = {"transpose"}
# Expensive apps get one injection position per site instead of the
# default first/middle/last sweep (a raytracer scenario replays the whole
# scene twice: recovery plus oracle).
POSITIONS = {"raytracer": (0,)}


def doubler(engine, m):
    return engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, v * 2))
    )


# ----------------------------------------------------------------------
# The injector and counter


def test_site_counter_windows():
    engine = Engine()
    run_counter = SiteCounter(during="run")
    prop_counter = SiteCounter(during="propagate")
    any_counter = SiteCounter(during="any")
    engine.attach_hook(FanoutHook([run_counter, prop_counter, any_counter]))

    m = engine.make_input(3)
    doubler(engine, m)
    assert run_counter.counts["read"] == 1
    assert run_counter.counts["write"] == 1
    assert prop_counter.total() == 0  # nothing propagated yet

    engine.change(m, 5)
    engine.propagate()
    assert prop_counter.counts["reexec"] == 1
    assert prop_counter.counts["write"] == 1
    assert prop_counter.counts["read"] == 0  # re-execution reuses the edge
    assert run_counter.counts["change"] == 1
    assert any_counter.total() == run_counter.total() + prop_counter.total()


def test_injector_is_one_shot_by_default():
    engine = Engine()
    injector = FaultInjector("write", at=0)
    engine.attach_hook(injector)
    m = engine.make_input(3)
    out = doubler(engine, m)  # during="propagate": initial run unaffected
    assert injector.fired == 0

    engine.change(m, 5)
    with pytest.raises(ReexecutionError) as exc_info:
        engine.propagate()
    assert isinstance(exc_info.value.original, PlantedFault)
    assert injector.fired == 1
    assert not injector.armed

    engine.propagate()  # disarmed: the retry converges
    assert out.peek() == 10
    assert injector.fired == 1


def test_injector_repeat_fires_persistently():
    engine = Engine()
    injector = FaultInjector("write", at=0, repeat=True)
    engine.attach_hook(injector)
    m = engine.make_input(3)
    doubler(engine, m)
    engine.change(m, 5)
    for _ in range(3):
        with pytest.raises(ReexecutionError):
            engine.propagate()
    assert injector.fired == 3
    assert injector.armed


def test_injector_fires_at_exact_position():
    """The injector's event numbering matches a probe counter's."""
    app = REGISTRY["msort"]

    def staged(hook):
        rng = random.Random(0)
        data = app.make_data(12, rng)
        session = Session(app, backend="interp", hook=hook)
        session.run(data=data)
        app.apply_change(session.input_handle, rng, 0)
        return session

    counter = SiteCounter()
    staged(counter).propagate()
    total = counter.counts["write"]
    assert total > 2

    injector = FaultInjector("write", at=total - 1)
    session = staged(injector)
    with pytest.raises(ReexecutionError):
        session.propagate()
    # It fired exactly at the last write: counts agree with the probe.
    assert injector.fired == 1
    assert injector.counts["write"] == total


def test_injector_custom_exception_and_window():
    engine = Engine()
    injector = FaultInjector("read", at=0, exc=OSError("disk gone"), during="run")
    engine.attach_hook(injector)
    m = engine.make_input(3)
    with pytest.raises(OSError, match="disk gone"):
        doubler(engine, m)


def test_injector_rejects_unknown_site_and_window():
    with pytest.raises(ValueError):
        FaultInjector("frobnicate")
    with pytest.raises(ValueError):
        FaultInjector("read", during="sometimes")
    assert set(SITES) >= {"read", "mod", "write", "memo-hit"}


# ----------------------------------------------------------------------
# Failure events in the log


def test_event_log_records_abort_and_rollback_and_poison():
    engine = Engine()
    log = EventLog()
    injector = FaultInjector("write", at=0)
    engine.attach_hook(FanoutHook([log, injector]))
    m = engine.make_input(3)
    doubler(engine, m)

    engine.change(m, 5)
    with pytest.raises(ReexecutionError):
        engine.propagate()
    (abort,) = log.of_kind("reexec-abort")
    assert abort.info["consistent"] is True
    assert "PlantedFault" in abort.info["error"]

    engine.rollback()
    (rollback,) = log.of_kind("rollback")
    assert rollback.info["undone"] == 1
    assert rollback.info["restaged"] == 1

    # Poison: make the next abort's cleanup fail.
    injector.armed = True
    engine._delete_range = lambda a, b: (_ for _ in ()).throw(
        RuntimeError("cleanup failure")
    )
    with pytest.raises(ReexecutionError):
        engine.propagate()
    (poison,) = log.of_kind("poison")
    assert "cleanup failure" in poison.info["reason"]
    assert log.of_kind("reexec-abort")[-1].info["consistent"] is False


# ----------------------------------------------------------------------
# The chaos suite


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_chaos_recovers_every_app(name, backend):
    result = chaos_app(
        REGISTRY[name],
        SIZES[name],
        backend=backend,
        changes=2,
        seed=SEEDS.get(name, 0),
        positions=POSITIONS.get(name),
    )
    assert isinstance(result, ChaosResult)
    # Every scheduled fault fired and was recovered from (chaos_app raises
    # ChaosError/InvariantViolation on any divergence).
    assert result.fired >= result.scenarios
    if name in FREE_APPS:
        # Free propagation: no user code re-runs, nothing to inject.
        assert result.scenarios == 0
        return
    # The core sites must be injectable: a change stream that never
    # re-executes a read would make the whole scenario vacuous.
    assert "write" not in result.skipped_sites, (
        f"{name}: no writes re-executed; pick a different seed/size"
    )
    assert result.scenarios > 0
    assert result.invariant_checks > 0


# ----------------------------------------------------------------------
# Chaos under lazy demand walks

#: The lazy sweep multiplies scenarios the same way, so it runs on a
#: representative subset: keyed sharing (msort), cutoffs (filter), and a
#: matrix app whose output is a tuple-of-mods structure (mat-add).
LAZY_CHAOS_APPS = ["filter", "msort", "mat-add"]


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
@pytest.mark.parametrize("name", LAZY_CHAOS_APPS)
def test_chaos_recovers_under_lazy_demand(name, backend):
    """Faults planted inside demand walks (the injection window keys on
    ``engine.propagating``, which demand also sets) must recover through
    ``Session.demand(on_error=...)`` to the from-scratch oracle's output,
    with the suspicion-closure invariant holding throughout."""
    result = chaos_app(
        REGISTRY[name],
        SIZES[name],
        backend=backend,
        changes=2,
        seed=SEEDS.get(name, 0),
        positions=POSITIONS.get(name),
        propagation="lazy",
    )
    assert isinstance(result, ChaosResult)
    assert result.scenarios > 0
    assert result.fired >= 1
    assert result.invariant_checks > 0


def test_chaos_rejects_unknown_propagation():
    with pytest.raises(ValueError):
        chaos_app(REGISTRY["map"], 8, propagation="sometimes")


# ----------------------------------------------------------------------
# Persistence chaos: corrupt snapshots and torn journals vs the oracle

#: Snapshot-corruption sweep apps: keyed sharing over a Cons spine
#: (msort), scalar cells as the server documents use (vec-reduce), and
#: the deepest/widest trace in the registry (raytracer).
PERSIST_CHAOS_APPS = ["msort", "vec-reduce", "raytracer"]
PERSIST_CHAOS_SIZES = {"msort": 12, "vec-reduce": 12, "raytracer": 4}


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
@pytest.mark.parametrize("name", PERSIST_CHAOS_APPS)
def test_persist_chaos_every_corruption_detected_or_survived(
    tmp_path, name, backend
):
    """Every corruption kind either raises a typed PersistError or
    restores to the oracle output -- never a wrong value, never a foreign
    exception (chaos_persist raises ChaosError on any other outcome)."""
    result = chaos_persist(
        REGISTRY[name],
        PERSIST_CHAOS_SIZES[name],
        backend=backend,
        changes=2,
        seed=SEEDS.get(name, 0),
        dir=str(tmp_path),
    )
    assert result.scenarios == result.detected + result.survived
    assert result.scenarios > 0
    # Structural damage (bad magic, emptied file, halved file) can never
    # slip past the header checks, whatever the app or backend.
    assert result.detected >= 3


@pytest.mark.parametrize("mode", ["eager", "lazy"])
def test_persist_chaos_lazy_matches_eager_promise(tmp_path, mode):
    result = chaos_persist(
        REGISTRY["msort"], 12, mode=mode, changes=2, dir=str(tmp_path)
    )
    assert result.scenarios == result.detected + result.survived
    assert result.detected >= 3


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
@pytest.mark.parametrize("mode", ["eager", "lazy"])
def test_journal_chaos_prefix_integrity(tmp_path, backend, mode):
    """Damaged journals replay exactly a clean prefix of the acknowledged
    edits; re-applying the lost suffix reaches the oracle meter-exactly
    (chaos_journal raises ChaosError on any divergence)."""
    result = chaos_journal(
        "vec-reduce",
        12,
        backend=backend,
        mode=mode,
        edits=6,
        seed=3,
        dir=str(tmp_path),
    )
    assert result.scenarios == result.detected + result.survived
    assert result.scenarios == len(CORRUPTIONS)
    # Mid-file damage (flip-byte past the first quarter) must be caught
    # by the per-record CRC, not silently replayed.
    assert result.detected >= 1
