"""Deep constructor chains must never overflow the interpreter stack.

Regression tests for the recursion bugs the hash-consing rework fixed:
``ConValue.__eq__``/``__hash__`` and the engine's ``_values_equal`` used
to recurse along the spine, so a write-cutoff comparison (or a dict
lookup) on a deep cons chain raised ``RecursionError``.  All three walks
are iterative now; these tests pin that by running them on multi-thousand
node chains under a deliberately *tightened* recursion limit — a
recursive implementation overflows deterministically, an iterative one
does not care.

Sizes are fixed constants on purpose: the runtime raises the global
recursion limit to ~600k for the interpreters
(``repro.interp.ensure_recursion_headroom``), so anything derived from
``sys.getrecursionlimit()`` inside a test explodes once an engine has run
earlier in the session.

Floats are used as elements on the direct-structure tests because they
bypass the intern table (see :mod:`repro.sac.intern`): an uninterned
chain is the case that actually has to walk.
"""

import contextlib
import sys

from repro.api import Session
from repro.interp.values import ConValue, list_value_to_python
from repro.sac.engine import _values_equal

#: Far deeper than the 1000-frame budget enforced below.
DEPTH = 5000


@contextlib.contextmanager
def _tight_stack(limit=1000):
    """Clamp the recursion limit so a spine-recursive walk overflows."""
    saved = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(saved)


def _chain(depth):
    node = ConValue("Nil")
    for i in range(depth):
        node = ConValue("Cons", (float(i), node))
    return node


def test_deep_chain_equality_and_hash_are_iterative():
    a = _chain(DEPTH)
    b = _chain(DEPTH)
    assert a is not b  # floats bypass interning: genuinely deep walk
    with _tight_stack():
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"


def test_deep_chain_difference_detected():
    a = ConValue("Cons", (1.5, _chain(DEPTH)))
    b = ConValue("Cons", (2.5, _chain(DEPTH)))
    with _tight_stack():
        assert a != b


def test_values_equal_walks_deep_chains_iteratively():
    a = _chain(DEPTH)
    b = _chain(DEPTH)
    short = _chain(DEPTH - 1)
    with _tight_stack():
        assert _values_equal(a, b)
        assert not _values_equal(a, short)


SQUARES = """
datatype cell = Nil | Cons of int * cell $C

fun squares l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h * h, squares t)

val main : cell $C -> cell $C = squares
"""


def test_deep_list_edit_head_no_recursion_error():
    """End to end: a list longer than the default recursion limit, edit
    the head, propagate.  The engine's write-cutoff comparisons along the
    way must not recurse down the spine.  (The interpreter itself *is*
    recursive over the list — that is what ``ensure_recursion_headroom``
    is for — so the limit is not clamped here.)"""
    n = 1500
    session = Session(SQUARES)
    xs = session.input_list(list(range(n)))
    out = session.run(xs.head)
    assert xs.set(0, 9) == 1
    session.propagate()
    result = list_value_to_python(out)
    assert result[0] == 81
    assert result[1:] == [x * x for x in range(1, n)]
