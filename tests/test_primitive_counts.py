"""Regression pins for the optimizer's static primitive counts.

Timing-based benchmarks catch optimizer regressions slowly and noisily;
the *static* mod/read/write/memo counts of the translated code catch them
structurally.  These tests pin the exact counts for the msort and mat-mult
examples before and after the Section 3.4 rewrite rules.  If a compiler
change shifts these numbers, that is not necessarily a bug -- but it must
be noticed, understood, and the pins updated deliberately.
"""

from repro.apps import REGISTRY


def _counts(name, **kwargs):
    return REGISTRY[name].compiled(**kwargs).primitive_counts()


def test_msort_optimized_counts():
    assert _counts("msort") == {"mod": 7, "read": 10, "write": 13, "memo": 13}


def test_msort_unoptimized_counts():
    assert _counts("msort", optimize_flag=False) == {
        "mod": 15,
        "read": 18,
        "write": 21,
        "memo": 13,
    }


def test_msort_rules_remove_same_number_of_each():
    """Each Section 3.4 rule eliminates one mod, one read, and one write;
    on msort the rules fire 8 times."""
    opt = _counts("msort")
    unopt = _counts("msort", optimize_flag=False)
    removed = {k: unopt[k] - opt[k] for k in ("mod", "read", "write")}
    assert removed == {"mod": 8, "read": 8, "write": 8}
    assert unopt["memo"] == opt["memo"]  # the rules never remove memo points


def test_msort_no_memoize_counts():
    assert _counts("msort", memoize=False) == {
        "mod": 7,
        "read": 10,
        "write": 13,
        "memo": 0,
    }


def test_matmult_counts_optimized_and_not():
    """mat-mult is built from vector primitives the rewrite rules do not
    fire on: optimized and unoptimized counts are identical (and pinned)."""
    expected = {"mod": 5, "read": 8, "write": 5, "memo": 2}
    assert _counts("mat-mult") == expected
    assert _counts("mat-mult", optimize_flag=False) == expected


def test_matmult_no_memoize_counts():
    assert _counts("mat-mult", memoize=False) == {
        "mod": 5,
        "read": 8,
        "write": 5,
        "memo": 0,
    }
