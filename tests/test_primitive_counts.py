"""Regression pins for the optimizer's static primitive counts and the
engine's dynamic meter counts.

Timing-based benchmarks catch optimizer regressions slowly and noisily;
the *static* mod/read/write/memo counts of the translated code catch them
structurally.  These tests pin the exact counts for the msort and mat-mult
examples before and after the Section 3.4 rewrite rules.  If a compiler
change shifts these numbers, that is not necessarily a bug -- but it must
be noticed, understood, and the pins updated deliberately.

The *dynamic* meter pins at the bottom play the same role for the engine:
one fixed workload (seeded input, seeded edits), exact expected counter
values, asserted identically on both backends.  Any engine "optimization"
that changes how much work propagation performs -- rather than how fast
each unit of work runs -- trips these pins.
"""

import random

import pytest

from repro.apps import REGISTRY
from repro.sac.engine import Engine


def _counts(name, **kwargs):
    return REGISTRY[name].compiled(**kwargs).primitive_counts()


def test_msort_optimized_counts():
    assert _counts("msort") == {"mod": 7, "read": 10, "write": 13, "memo": 13}


def test_msort_unoptimized_counts():
    assert _counts("msort", optimize_flag=False) == {
        "mod": 15,
        "read": 18,
        "write": 21,
        "memo": 13,
    }


def test_msort_rules_remove_same_number_of_each():
    """Each Section 3.4 rule eliminates one mod, one read, and one write;
    on msort the rules fire 8 times."""
    opt = _counts("msort")
    unopt = _counts("msort", optimize_flag=False)
    removed = {k: unopt[k] - opt[k] for k in ("mod", "read", "write")}
    assert removed == {"mod": 8, "read": 8, "write": 8}
    assert unopt["memo"] == opt["memo"]  # the rules never remove memo points


def test_msort_no_memoize_counts():
    assert _counts("msort", memoize=False) == {
        "mod": 7,
        "read": 10,
        "write": 13,
        "memo": 0,
    }


def test_matmult_counts_optimized_and_not():
    """mat-mult is built from vector primitives the rewrite rules do not
    fire on: optimized and unoptimized counts are identical (and pinned)."""
    expected = {"mod": 5, "read": 8, "write": 5, "memo": 2}
    assert _counts("mat-mult") == expected
    assert _counts("mat-mult", optimize_flag=False) == expected


def test_matmult_no_memoize_counts():
    assert _counts("mat-mult", memoize=False) == {
        "mod": 5,
        "read": 8,
        "write": 5,
        "memo": 0,
    }


# ----------------------------------------------------------------------
# Dynamic meter pins: exact engine work for a fixed workload, per backend


#: (app, n, seed, changes) -> exact meter counters after the workload:
#: (mods_created, reads_executed, writes, changed_writes, memo_hits,
#:  memo_misses, edges_reexecuted, queue_drained).
METER_PINS = {
    ("msort", 32, 31, 4): (1421, 2007, 1473, 1440, 52, 892, 87, 93),
    ("filter", 32, 31, 4): (96, 73, 66, 64, 8, 68, 5, 5),
}


@pytest.mark.parametrize("workload", sorted(METER_PINS))
@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
def test_meter_counts_pinned(workload, backend):
    name, n, seed, changes = workload
    app = REGISTRY[name]
    rng = random.Random(seed)
    data = app.make_data(n, rng)
    engine = Engine()
    instance = app.instance(engine, backend=backend)
    input_value, handle = app.make_sa_input(engine, data)
    instance.apply(input_value)
    for step in range(changes):
        app.apply_change(handle, rng, step)
        engine.propagate()
    m = engine.meter
    got = (
        m.mods_created,
        m.reads_executed,
        m.writes,
        m.changed_writes,
        m.memo_hits,
        m.memo_misses,
        m.edges_reexecuted,
        m.queue_drained,
    )
    assert got == METER_PINS[workload], (
        f"{name} ({backend}): engine meter diverged from the pinned "
        f"workload counts -- propagation is doing different work"
    )
