"""Batched change propagation: differential and space-bound tests.

The tentpole property: applying k edits inside one ``Session.batch`` scope
and propagating once must be *indistinguishable* from applying the same k
edits with a propagation after each -- identical outputs and identical
final trace sizes -- across every registered application and both
execution backends.  Batching is purely an efficiency lever (per-read
deduplication within one pass), never a semantic one.

Also here: the memory-growth smoke test -- hundreds of batched edit /
propagate rounds keep ``trace_size`` within a constant factor of a fresh
run on the final data, and table residency (memo/alloc buckets) stays
bounded thanks to compaction.
"""

import random

import pytest

from repro.api import Session, values_close
from repro.apps import REGISTRY

# Input sizes chosen per app family to keep the suite fast (matrix apps
# square their input; the raytracer's n is the image size).
SIZES = {
    "map": 24,
    "filter": 24,
    "reverse": 24,
    "split": 24,
    "qsort": 24,
    "msort": 24,
    "vec-reduce": 24,
    "vec-mult": 24,
    "mat-vec-mult": 6,
    "mat-add": 6,
    "transpose": 6,
    "mat-mult": 4,
    "block-mat-mult": 8,
    "raytracer": 4,
}
EDITS = 4


def _drive(app, n, *, backend, batch, seed=31):
    """Run ``app``, apply EDITS random changes (batched or one-by-one),
    and return (readback output, final trace size)."""
    rng = random.Random(seed)
    session = Session(app, backend=backend)
    data = app.make_data(n, rng)
    output = session.run(data=data)
    if batch:
        with session.batch():
            for step in range(EDITS):
                app.apply_change(session.input_handle, rng, step)
    else:
        for step in range(EDITS):
            app.apply_change(session.input_handle, rng, step)
            session.propagate()
    return app.readback(output), session.trace_size(), session.input_handle


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_batched_equals_sequential(name, backend):
    """k single-edit propagations == one k-edit batch, for every app."""
    app = REGISTRY[name]
    n = SIZES[name]
    seq_out, seq_trace, seq_handle = _drive(app, n, backend=backend, batch=False)
    bat_out, bat_trace, bat_handle = _drive(app, n, backend=backend, batch=True)
    # Identical RNG consumption implies identical final inputs ...
    assert app.handle_data(seq_handle) == app.handle_data(bat_handle)
    # ... and batching must not change the output or the trace.
    assert seq_out == bat_out
    assert seq_trace == bat_trace
    # Sanity: both equal the reference on the final data.
    assert values_close(seq_out, app.reference(app.handle_data(seq_handle)))


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
def test_batched_propagation_does_less_work(backend):
    """A k-edit batch re-executes no more reads than k sequential passes
    (and strictly fewer when edited cells share readers up the spine)."""
    app = REGISTRY["msort"]

    def work(batch):
        rng = random.Random(9)
        session = Session(app, backend=backend)
        session.run(data=app.make_data(64, rng))
        before = session.engine.meter.edges_reexecuted
        if batch:
            with session.batch():
                for step in range(8):
                    app.apply_change(session.input_handle, rng, step)
        else:
            for step in range(8):
                app.apply_change(session.input_handle, rng, step)
                session.propagate()
        return session.engine.meter.edges_reexecuted - before

    assert work(batch=True) < work(batch=False)


def test_trace_size_bounded_over_many_batched_edits():
    """500 batched edits leave the trace within 1.5x of a fresh run and
    keep the memo/alloc tables swept (the compaction invariant)."""
    app = REGISTRY["map"]
    rng = random.Random(17)
    session = Session(app)
    session.run(data=list(range(64)))

    step = 0
    for _round in range(125):
        with session.batch():
            for _ in range(4):  # 125 rounds x 4 edits = 500 edits
                app.apply_change(session.input_handle, rng, step)
                step += 1

    final_data = app.handle_data(session.input_handle)
    fresh = Session(app)
    fresh.run(data=final_data)

    assert session.trace_size() <= 1.5 * fresh.trace_size()

    # Compaction kept the dead-entry backlog below the live population
    # (plus the sweep-trigger threshold).
    residency = session.engine.table_residency()
    live = session.engine.meter.live_memo_entries
    assert residency["dead_memo_entries"] <= max(
        session.engine.compact_threshold, live
    )
    assert session.engine.meter.compactions > 0


# ----------------------------------------------------------------------
# Batch exception guarantees (DESIGN.md Section 7)


def test_batch_records_partial_reexecuted_on_budget():
    """The closing propagate overrunning its budget must still record the
    partial re-execution count on the batch object before re-raising."""
    from repro.api import PropagationBudgetExceeded

    app = REGISTRY["msort"]
    rng = random.Random(5)
    session = Session(app, backend="interp")
    output = session.run(data=app.make_data(24, rng))

    with pytest.raises(PropagationBudgetExceeded) as exc_info:
        with session.batch(budget=1) as b:
            for step in range(3):
                app.apply_change(session.input_handle, rng, step)
    assert b.reexecuted == exc_info.value.reexecuted == 1
    assert b.changed >= 1  # the edit count was recorded too

    # The staged work survives: an unbounded propagate finishes the pass.
    session.propagate()
    assert app.readback(output) == app.reference(app.handle_data(session.input_handle))


def test_batch_records_partial_reexecuted_on_reader_failure():
    """Same guarantee when the closing propagate aborts on a raising
    reader: partial count recorded, failing edge still staged."""
    from repro.obs.faults import FaultInjector
    from repro.sac import ReexecutionError

    app = REGISTRY["msort"]
    rng = random.Random(5)
    injector = FaultInjector("write", at=2)
    session = Session(app, backend="interp", hook=injector)
    output = session.run(data=app.make_data(24, rng))

    with pytest.raises(ReexecutionError) as exc_info:
        with session.batch() as b:
            for step in range(3):
                app.apply_change(session.input_handle, rng, step)
    assert b.reexecuted == exc_info.value.reexecuted
    assert exc_info.value.pending > 0

    # The injector is one-shot: retrying converges on the edited data.
    session.propagate()
    assert app.readback(output) == app.reference(app.handle_data(session.input_handle))


def test_staged_edits_survive_batch_body_exception():
    """An exception inside the batch body skips the closing propagation
    but keeps the staged edits in the dirty queue."""
    app = REGISTRY["map"]
    rng = random.Random(5)
    session = Session(app, backend="interp")
    output = session.run(data=list(range(8)))
    before = app.readback(output)

    with pytest.raises(RuntimeError, match="host bug"):
        with session.batch():
            app.apply_change(session.input_handle, rng, 0)
            raise RuntimeError("host bug")
    # Nothing propagated at scope exit...
    assert app.readback(output) == before
    assert len(session.engine.queue) > 0
    # ...but the edit is staged, not lost: propagate applies it.
    session.propagate()
    assert app.readback(output) == app.reference(app.handle_data(session.input_handle))
