"""Hand-written (AFL-style) baseline correctness tests."""

import random

import pytest

from repro.apps import REGISTRY
from repro.bench.handwritten import HANDWRITTEN
from repro.interp.marshal import ModListInput
from repro.interp.values import list_value_to_python
from repro.sac.engine import Engine


def readback(output):
    if isinstance(output, tuple):
        return tuple(list_value_to_python(o) for o in output)
    return list_value_to_python(output)


def normalize(expected):
    if isinstance(expected, tuple):
        return tuple(list(x) for x in expected)
    return list(expected)


@pytest.mark.parametrize("name", sorted(HANDWRITTEN))
def test_handwritten_matches_reference_under_changes(name):
    app = REGISTRY[name]
    run = HANDWRITTEN[name]
    rng = random.Random(3)
    data = app.make_data(40, rng)
    engine = Engine()
    handle = ModListInput(engine, data)
    out = run(engine, handle.head)
    assert readback(out) == normalize(app.reference(data))
    for step in range(12):
        app.apply_change(handle, rng, step)
        engine.propagate()
        assert readback(out) == normalize(app.reference(handle.to_python()))


def test_hand_map_is_constant_work_per_change():
    app = REGISTRY["map"]
    rng = random.Random(4)
    engine = Engine()
    handle = ModListInput(engine, app.make_data(500, rng))
    HANDWRITTEN["map"](engine, handle.head)
    before = engine.meter.reads_executed
    for step in range(10):
        app.apply_change(handle, rng, step)
        engine.propagate()
    assert engine.meter.reads_executed - before <= 20


def test_hand_uses_fewer_or_equal_mods_than_compiled():
    """Hand code is at least as economical with modifiables (the paper's
    AFL advantage, Section 4.9)."""
    app = REGISTRY["qsort"]
    rng = random.Random(5)
    data = app.make_data(60, rng)

    hand_engine = Engine()
    handle = ModListInput(hand_engine, data)
    HANDWRITTEN["qsort"](hand_engine, handle.head)

    from repro.api import Session

    session = Session(app)
    compiled_engine = session.engine
    value, _handle2 = app.make_sa_input(compiled_engine, data)
    session.run(value)

    assert hand_engine.meter.mods_created <= compiled_engine.meter.mods_created


def test_keyed_msort_correct_under_changes():
    from repro.bench.handwritten import hand_msort_keyed

    app = REGISTRY["msort"]
    rng = random.Random(7)
    data = app.make_data(50, rng)
    engine = Engine()
    handle = ModListInput(engine, data)
    out = hand_msort_keyed(engine, handle.head)
    assert list_value_to_python(out) == sorted(data)
    for step in range(20):
        app.apply_change(handle, rng, step)
        engine.propagate()
        assert list_value_to_python(out) == sorted(handle.to_python())


def test_keyed_msort_propagation_is_polylog():
    """The unsafe keyed-allocation interface makes msort's propagation
    near-constant per change (paper Section 4.9's point about AFL's
    low-level interfaces; DESIGN.md Section 6)."""
    from repro.bench.handwritten import hand_msort_keyed

    app = REGISTRY["msort"]

    def work_per_change(n):
        rng = random.Random(5)
        data = app.make_data(n, rng)
        engine = Engine()
        handle = ModListInput(engine, data)
        hand_msort_keyed(engine, handle.head)
        before = engine.meter.reads_executed + engine.meter.edges_reexecuted
        for step in range(8):
            app.apply_change(handle, rng, step)
            engine.propagate()
        return (engine.meter.reads_executed + engine.meter.edges_reexecuted - before) / 8

    small, large = work_per_change(64), work_per_change(1024)
    # 16x the input must cost well under 3x the propagation work.
    assert large < 3 * small
