"""Level-inference tests (repro.core.levels).

These check the paper's information-flow discipline: ``$C`` annotations
seed changeability, elimination forms propagate it, and rigid positions
(explicit ``$S``, builtin vector spines/indices) reject it.
"""

import pytest

from repro.core.anf import normalize
from repro.core.freshen import uniquify
from repro.core.ir import CoreProgram
from repro.core.levels import infer_levels
from repro.core.matchcomp import compile_matches
from repro.core.monomorphize import monomorphize
from repro.lang.elaborate import elaborate
from repro.lang.errors import LmlLevelError
from repro.lang.parser import parse_program


def levels_of(source):
    core = elaborate(parse_program(source))
    core = CoreProgram(
        body=uniquify(core.body), datatypes=core.datatypes, main_type=core.main_type
    )
    core = monomorphize(core)
    core = compile_matches(core)
    sxml = normalize(core)
    return infer_levels(sxml, core.datatypes), sxml


def main_arrow(source):
    info, _ = levels_of(source)
    lty = info.main_lty
    assert lty.kind == "arrow"
    return lty


def test_unannotated_program_is_all_stable():
    lty = main_arrow("val main = fn x => x + 1")
    assert lty.children[0].level == "S"
    assert lty.children[1].level == "S"


def test_annotation_forces_changeable():
    lty = main_arrow("val main : int $C -> int = fn x => 0")
    assert lty.children[0].level == "C"


def test_prim_flows_changeability():
    lty = main_arrow("val main : int $C -> int $C = fn x => x + 1")
    assert lty.children[1].level == "C"


def test_prim_result_infected_without_annotation():
    # Result level is inferred C because a changeable operand flows in.
    lty = main_arrow("val main : int $C -> int = fn x => x * 2")
    assert lty.children[1].level == "C"


def test_if_scrutinee_infects_result():
    lty = main_arrow("val main : bool $C -> int = fn b => if b then 1 else 2")
    assert lty.children[1].level == "C"


def test_stable_condition_keeps_result_stable():
    lty = main_arrow("val main = fn b => if b then 1 else 2")
    assert lty.children[1].level == "S"


def test_case_scrutinee_infects_result():
    src = """
    datatype t = A | B of int
    val main : t $C -> int = fn x => case x of A => 0 | B n => n
    """
    lty = main_arrow(src)
    assert lty.children[1].level == "C"


def test_changeable_list_tail_via_datatype():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h, mapf t)
    val main : cell $C -> cell $C = mapf
    """
    lty = main_arrow(src)
    assert lty.children[0].level == "C"
    assert lty.children[1].level == "C"


def test_tuple_components_independent():
    src = "val main : (int $C * int) -> int = fn (a, b) => b"
    lty = main_arrow(src)
    dom = lty.children[0]
    assert dom.children[0].level == "C"
    assert dom.children[1].level == "S"
    # b is stable, so the result stays stable.
    assert lty.children[1].level == "S"


def test_projection_from_changeable_tuple_is_changeable():
    src = "val main = fn (p : (int * int) $C) => #1 p"
    lty = main_arrow(src)
    assert lty.children[0].level == "C"
    assert lty.children[1].level == "C"


def test_deref_is_changeable():
    src = "val main = fn x => let val r = ref x in !r end"
    lty = main_arrow(src)
    assert lty.children[1].level == "C"


def test_vector_elements_ride_scheme_variables():
    src = """
    val main : (real $C) vector -> real $C =
      fn v => vreduce (v, 0.0, fn (x, y) => x + y)
    """
    lty = main_arrow(src)
    assert lty.children[0].kind == "vector"
    assert lty.children[0].children[0].level == "C"
    assert lty.children[1].level == "C"


def test_changeable_vector_spine_rejected():
    """vlength requires a stable vector: annotating the vector itself $C
    must be a level error (the builtin's signature position is rigid)."""
    src = "val main : (real vector) $C -> int = fn v => vlength v"
    with pytest.raises(LmlLevelError):
        levels_of(src)


def test_changeable_index_rejected():
    src = """
    val main : (real vector * int $C) -> real = fn (v, i) => vsub (v, i)
    """
    with pytest.raises(LmlLevelError):
        levels_of(src)


def test_explicit_stable_annotation_is_rigid():
    src = "val main : int $C -> int $S = fn x => x + 1"
    with pytest.raises(LmlLevelError):
        levels_of(src)


def test_infection_through_user_function():
    src = """
    fun helper x = x * 3
    val main : int $C -> int = fn x => helper x
    """
    lty = main_arrow(src)
    assert lty.children[1].level == "C"


def test_unrelated_data_stays_stable():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    val main : cell $C -> int = fn l => 5 + 6
    """
    lty = main_arrow(src)
    assert lty.children[1].level == "S"


def test_datatype_field_promotion():
    """Unannotated datatype fields are flexible: feeding changeable data
    into a field promotes it (rather than erroring), per DESIGN.md."""
    src = """
    datatype box = Box of int
    val main : int $C -> box = fn x => Box x
    """
    info, _ = levels_of(src)
    # The program compiles; the box payload is promoted to changeable.
    lty = info.main_lty
    assert lty.children[1].level in ("S", "C")  # box top itself may stay S
