"""A-normalization invariants (repro.core.anf) and uniquify/monomorphize."""

from repro.core import sxml as S
from repro.core.anf import normalize
from repro.core.freshen import uniquify
from repro.core.ir import CoreProgram
from repro.core.matchcomp import compile_matches
from repro.core.monomorphize import monomorphize
from repro.core.sxmlutil import free_vars
from repro.lang.elaborate import elaborate
from repro.lang.parser import parse_program


def to_sxml(source):
    core = elaborate(parse_program(source))
    core = CoreProgram(
        body=uniquify(core.body), datatypes=core.datatypes, main_type=core.main_type
    )
    core = monomorphize(core)
    core = compile_matches(core)
    return normalize(core), core


def collect_binders(e, acc=None):
    if acc is None:
        acc = []
    if isinstance(e, S.ELet):
        acc.append(e.name)
        collect_binders(e.bind, acc)
        collect_binders(e.body, acc)
    elif isinstance(e, S.ELetRec):
        for name, lam in e.bindings:
            acc.append(name)
            collect_binders(lam, acc)
        collect_binders(e.body, acc)
    elif isinstance(e, S.BLam):
        acc.append(e.param)
        collect_binders(e.body, acc)
    elif isinstance(e, S.BIf):
        collect_binders(e.then, acc)
        collect_binders(e.els, acc)
    elif isinstance(e, S.BCase):
        for c in e.clauses:
            if c.binder:
                acc.append(c.binder)
            collect_binders(c.body, acc)
        if e.default is not None:
            collect_binders(e.default, acc)
    elif isinstance(e, (S.ERet, S.Bind)):
        pass
    return acc


def check_anf_invariants(e):
    """All operands must be atoms; every Expr ends in ERet."""
    if isinstance(e, S.ELet):
        assert isinstance(e.bind, S.Bind)
        check_bind(e.bind)
        check_anf_invariants(e.body)
    elif isinstance(e, S.ELetRec):
        for _n, lam in e.bindings:
            assert isinstance(lam, S.BLam)
            check_anf_invariants(lam.body)
        check_anf_invariants(e.body)
    elif isinstance(e, S.ERet):
        assert isinstance(e.atom, (S.AVar, S.AConst))
    else:
        raise AssertionError(f"unexpected node {e!r}")


def check_bind(b):
    atoms = []
    if isinstance(b, S.BPrim):
        atoms = b.args
    elif isinstance(b, S.BApp):
        atoms = [b.fn, b.arg]
    elif isinstance(b, S.BTuple):
        atoms = b.items
    elif isinstance(b, S.BCon):
        atoms = b.args
    elif isinstance(b, S.BProj):
        atoms = [b.arg]
    elif isinstance(b, S.BLam):
        check_anf_invariants(b.body)
    elif isinstance(b, S.BIf):
        atoms = [b.cond]
        check_anf_invariants(b.then)
        check_anf_invariants(b.els)
    elif isinstance(b, S.BCase):
        atoms = [b.scrut]
        for c in b.clauses:
            check_anf_invariants(c.body)
        if b.default is not None:
            check_anf_invariants(b.default)
    elif isinstance(b, (S.BRef, S.BDeref)):
        atoms = [b.arg]
    elif isinstance(b, S.BAssign):
        atoms = [b.ref, b.value]
    elif isinstance(b, S.BAtom):
        atoms = [b.atom]
    elif isinstance(b, S.BAscribe):
        atoms = [b.atom]
    for a in atoms:
        assert isinstance(a, (S.AVar, S.AConst)), f"non-atomic operand {a!r}"


SAMPLE = """
datatype cell = Nil | Cons of int * cell $C

fun mapf l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h * 2 + 1, mapf t)

fun apply (f, x) = f x

val main : cell $C -> cell $C = fn l => apply (mapf, l)
"""


def test_anf_operands_are_atomic():
    expr, _ = to_sxml(SAMPLE)
    check_anf_invariants(expr)


def test_binders_are_unique():
    expr, _ = to_sxml(SAMPLE)
    binders = collect_binders(expr)
    assert len(binders) == len(set(binders))


def test_closed_program():
    expr, _ = to_sxml(SAMPLE)
    assert free_vars(expr) == set()


def test_copy_propagation_removes_trivial_lets():
    expr, _ = to_sxml("val x = 5 val y = x val main = fn u => y + u")

    def find_trivial(e):
        if isinstance(e, S.ELet):
            if isinstance(e.bind, S.BAtom) and isinstance(e.bind.atom, S.AVar):
                return True
            return find_trivial(e.body) or find_trivial(e.bind)
        if isinstance(e, S.BLam):
            return find_trivial(e.body)
        return False

    assert not find_trivial(expr)


def test_monomorphize_specializes_per_type():
    source = """
    fun id x = x
    val a = id 1
    val b = id 1.5
    val main = fn u => (id a, id b)
    """
    expr, _ = to_sxml(source)
    binders = collect_binders(expr)
    specialized = [b for b in binders if b.startswith("id")]
    # Two instantiations -> two copies (each with a unique suffix).
    assert len({b.split("@")[1].split("#")[0] for b in specialized if "@" in b}) == 2


def test_monomorphize_drops_unused_polymorphic_bindings():
    source = """
    fun unused x = x
    val main = fn u => u + 1
    """
    expr, _ = to_sxml(source)
    assert not any(b.startswith("unused") for b in collect_binders(expr))


def test_monomorphized_program_has_ground_types():
    from repro.lang.types import TVar, force

    def check_ty(ty):
        ty = force(ty)
        assert not isinstance(ty, TVar)

    def walk(e):
        if isinstance(e, S.ELet):
            walk_bind(e.bind)
            walk(e.body)
        elif isinstance(e, S.ELetRec):
            for _n, lam in e.bindings:
                walk_bind(lam)
            walk(e.body)
        elif isinstance(e, S.ERet):
            check_ty(e.atom.ty)

    def walk_bind(b):
        check_ty(b.ty)
        if isinstance(b, S.BLam):
            walk(b.body)
        elif isinstance(b, S.BIf):
            walk(b.then)
            walk(b.els)
        elif isinstance(b, S.BCase):
            for c in b.clauses:
                walk(c.body)
            if b.default is not None:
                walk(b.default)

    expr, _ = to_sxml(SAMPLE)
    walk(expr)


def test_mutually_recursive_group_specializes_together():
    source = """
    fun pingf x = pongf x
    and pongf x = pingf x
    val a = fn u => pingf 1
    val b = fn u => pingf true
    val main = fn u => (a, b)
    """
    expr, _ = to_sxml(source)
    binders = collect_binders(expr)
    pings = [b for b in binders if b.startswith("ping")]
    pongs = [b for b in binders if b.startswith("pong")]
    assert len(pings) == 2 and len(pongs) == 2
