"""Ray tracer tests (paper Section 4.7)."""

import random

import pytest

from repro.apps import REGISTRY
from repro.apps.raytracer import (
    GROUPS,
    SceneInput,
    diffuse_surface,
    glass_surface,
    image_diff_fraction,
    mirror_surface,
    readback_image,
    reference_render,
    standard_scene,
)
from repro.api import Session, values_close


@pytest.fixture(scope="module")
def program():
    return REGISTRY["raytracer"].compiled()


def render_lml(program, scene):
    sa = Session(program)
    handle = SceneInput(sa.engine, scene)
    out = sa.run(handle.value)
    return sa, handle, out


def test_scene_shape_matches_paper():
    scene = standard_scene(8)
    assert len(scene.spheres) == 18  # plus the plane: 19 objects
    assert len(scene.lights) == 3
    assert set(s[2] for s in scene.spheres) == set(GROUPS)


def test_lml_matches_python_reference(program):
    scene = standard_scene(6)
    _sa, _handle, out = render_lml(program, scene)
    assert values_close(readback_image(out), reference_render(scene))


def test_surface_toggle_propagates(program):
    scene = standard_scene(6)
    sa, handle, out = render_lml(program, scene)
    handle.set_group("B", mirror_surface((0.8, 0.2, 0.2)))
    sa.propagate()
    assert values_close(readback_image(out), reference_render(handle.data()))


def test_color_change_propagates(program):
    scene = standard_scene(6)
    sa, handle, out = render_lml(program, scene)
    handle.set_group("C", diffuse_surface((0.9, 0.9, 0.1)))
    sa.propagate()
    assert values_close(readback_image(out), reference_render(handle.data()))


def test_transparency_supported(program):
    scene = standard_scene(6)
    scene.surfaces["D"] = glass_surface((0.9, 0.9, 0.9))
    _sa, _handle, out = render_lml(program, scene)
    assert values_close(readback_image(out), reference_render(scene))


def test_repeated_toggles_stay_correct(program):
    scene = standard_scene(6)
    sa, handle, out = render_lml(program, scene)
    rng = random.Random(9)
    for _ in range(5):
        handle.toggle(rng.choice(GROUPS))
        sa.propagate()
        assert values_close(readback_image(out), reference_render(handle.data()))


def test_only_affected_pixels_change(program):
    """Toggling a group changes some pixels but not all (and the smallest
    group touches fewer pixels than the biggest, as in Table 2)."""
    scene = standard_scene(16)
    sa, handle, out = render_lml(program, scene)
    base = readback_image(out)
    handle.toggle("A")
    sa.propagate()
    frac_a = image_diff_fraction(base, readback_image(out))
    handle.toggle("A")
    sa.propagate()
    base = readback_image(out)
    handle.toggle("G")
    sa.propagate()
    frac_g = image_diff_fraction(base, readback_image(out))
    assert 0.0 < frac_g < frac_a < 1.0


def test_geometry_not_recomputed_for_surface_change(program):
    """Primary-ray intersections live outside the surface read: a color
    change re-runs shading, not the whole render."""
    scene = standard_scene(10)
    sa, handle, out = render_lml(program, scene)
    initial_reads = sa.engine.meter.reads_executed
    handle.set_group("E", diffuse_surface((0.1, 0.9, 0.5)))
    sa.propagate()
    rerun = sa.engine.meter.reads_executed - initial_reads
    # Far fewer reads than the initial full render.
    assert rerun < initial_reads / 3
