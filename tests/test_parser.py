"""Parser tests (repro.lang.parser)."""

import pytest

from repro.lang import ast as A
from repro.lang.errors import LmlSyntaxError
from repro.lang.parser import parse_expr, parse_program


def test_precedence_mul_over_add():
    e = parse_expr("1 + 2 * 3")
    assert isinstance(e, A.EPrim) and e.op == "+"
    assert isinstance(e.args[1], A.EPrim) and e.args[1].op == "*"


def test_precedence_cmp_over_bool():
    e = parse_expr("a < b andalso c")
    # andalso desugars to if
    assert isinstance(e, A.EIf)
    assert isinstance(e.cond, A.EPrim) and e.cond.op == "<"


def test_orelse_desugars_to_if():
    e = parse_expr("a orelse b")
    assert isinstance(e, A.EIf)
    assert isinstance(e.then, A.EConst) and e.then.value is True


def test_application_left_assoc():
    e = parse_expr("f x y")
    assert isinstance(e, A.EApp)
    assert isinstance(e.fn, A.EApp)
    assert e.fn.fn.name == "f"


def test_application_binds_tighter_than_ops():
    e = parse_expr("f x + g y")
    assert isinstance(e, A.EPrim) and e.op == "+"
    assert isinstance(e.args[0], A.EApp)


def test_unary_ops():
    e = parse_expr("~x")
    assert isinstance(e, A.EPrim) and e.op == "~"
    e = parse_expr("not b")
    assert isinstance(e, A.EPrim) and e.op == "not"
    e = parse_expr("!r")
    assert isinstance(e, A.EDeref)


def test_tuples_and_unit():
    e = parse_expr("(1, 2, 3)")
    assert isinstance(e, A.ETuple) and len(e.items) == 3
    e = parse_expr("()")
    assert isinstance(e, A.EConst) and e.kind == "unit"


def test_parenthesized_single_expr_is_not_tuple():
    e = parse_expr("(1 + 2)")
    assert isinstance(e, A.EPrim)


def test_sequence():
    e = parse_expr("(a; b; c)")
    assert isinstance(e, A.ESeq)
    assert isinstance(e.second, A.ESeq)


def test_annotation_in_parens():
    e = parse_expr("(x : int $C)")
    assert isinstance(e, A.EAnnot)
    assert isinstance(e.ty, A.TSLevel)


def test_if_extends_right():
    e = parse_expr("if c then a else b + 1")
    assert isinstance(e, A.EIf)
    assert isinstance(e.els, A.EPrim)


def test_case_with_clauses():
    e = parse_expr("case l of Nil => 0 | Cons (h, t) => h")
    assert isinstance(e, A.ECase)
    assert len(e.clauses) == 2
    pat0, _ = e.clauses[0]
    assert isinstance(pat0, A.PVar)  # constructor-ness resolved later
    pat1, _ = e.clauses[1]
    assert isinstance(pat1, A.PCon) and pat1.name == "Cons"


def test_fn_and_let():
    e = parse_expr("fn x => let val y = x in y end")
    assert isinstance(e, A.EFn)
    assert isinstance(e.body, A.ELet)


def test_assign_and_ref():
    e = parse_expr("r := 1")
    assert isinstance(e, A.EAssign)
    e = parse_expr("ref 0")
    assert isinstance(e, A.ERef)


def test_projection():
    e = parse_expr("#2 p")
    assert isinstance(e, A.EProj) and e.index == 2


def test_datatype_declaration():
    prog = parse_program("datatype cell = Nil | Cons of int * cell $C")
    (d,) = prog.decls
    assert isinstance(d, A.DDatatype)
    assert [c[0] for c in d.constructors] == ["Nil", "Cons"]
    assert d.constructors[0][1] is None
    assert isinstance(d.constructors[1][1], A.TSTuple)


def test_polymorphic_datatype():
    prog = parse_program("datatype 'a option = None | Some of 'a")
    (d,) = prog.decls
    assert d.tyvars == ["'a"]


def test_two_param_datatype():
    prog = parse_program("datatype ('a, 'b) pair = Pair of 'a * 'b")
    (d,) = prog.decls
    assert d.tyvars == ["'a", "'b"]


def test_type_abbreviation():
    prog = parse_program("type matrix = ((real $C) vector) vector")
    (d,) = prog.decls
    assert isinstance(d, A.DTypeAbbrev)
    assert isinstance(d.body, A.TSCon) and d.body.name == "vector"


def test_level_postfix_binds_tight():
    prog = parse_program("type t = int $C vector")
    body = prog.decls[0].body
    # (int $C) vector
    assert isinstance(body, A.TSCon) and body.name == "vector"
    assert isinstance(body.args[0], A.TSLevel)


def test_arrow_right_assoc():
    prog = parse_program("type t = int -> int -> int")
    body = prog.decls[0].body
    assert isinstance(body, A.TSArrow)
    assert isinstance(body.cod, A.TSArrow)


def test_fun_with_multiple_params_and_and():
    prog = parse_program("fun f x y = x and g z = z")
    (d,) = prog.decls
    assert isinstance(d, A.DFun)
    assert [c.name for c in d.clauses] == ["f", "g"]
    assert len(d.clauses[0].params) == 2


def test_fun_result_annotation():
    prog = parse_program("fun f x : int = x")
    assert prog.decls[0].clauses[0].result_ty is not None


def test_val_with_annotation():
    prog = parse_program("val main : cell $C -> cell $C = mapf")
    (d,) = prog.decls
    assert isinstance(d.pat, A.PAnnot)


def test_nested_tuple_patterns():
    prog = parse_program("fun f ((a, b), (c, d)) = a")
    params = prog.decls[0].clauses[0].params
    assert isinstance(params[0], A.PTuple)
    assert isinstance(params[0].items[0], A.PTuple)


def test_syntax_errors():
    with pytest.raises(LmlSyntaxError):
        parse_program("fun = 3")
    with pytest.raises(LmlSyntaxError):
        parse_expr("let val x = 1 in x")  # missing end
    with pytest.raises(LmlSyntaxError):
        parse_expr("(1, 2")
    with pytest.raises(LmlSyntaxError):
        parse_program("val x 3")


def test_fun_requires_params():
    with pytest.raises(LmlSyntaxError):
        parse_program("fun f = 3")
