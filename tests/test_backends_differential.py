"""Backend equivalence: interpreter vs closure-compilation vs stack machine.

The compiled backends (:mod:`repro.compile.closures` and
:mod:`repro.compile.stackmachine`) promise more than equal outputs: they
call the engine's ``mod``/``read``/``write``/``memo``/``impwrite``
primitives in *exactly* the same sequence as the tree-walking interpreter,
with equal memo keys and equal written values.  (The stack machine drives
the split ``*_begin``/``*_end`` halves of those primitives, which must
interleave to the identical protocol.)  If that holds, the meter counters
-- mods created, reads executed, writes, cutoff hits, memo hits and
misses, edges re-executed, live trace sizes -- must be *identical* at
every point of every run.

These tests assert exactly that: for every registered application, across
the optimize x memoize grid, all registered backends produce identical
outputs AND identical meter snapshots after the initial run and after
every one of a series of seeded incremental changes.
"""

import random

import pytest

from repro.apps import REGISTRY
from repro.backends import BACKENDS
from repro.sac.engine import Engine

#: Per-app input size and change count, kept small: the grid below runs
#: every case once per backend.  block-mat-mult needs n to be a multiple
#: of its block size (8); mat-mult is O(n^3).
APP_SIZES = {
    "map": (16, 6),
    "filter": (16, 6),
    "reverse": (16, 6),
    "split": (16, 6),
    "qsort": (16, 6),
    "msort": (16, 6),
    "vec-reduce": (16, 6),
    "vec-mult": (16, 6),
    "mat-vec-mult": (6, 4),
    "mat-add": (6, 4),
    "transpose": (6, 4),
    "mat-mult": (4, 4),
    "block-mat-mult": (8, 3),
    "raytracer": (4, 2),
}

GRID = [
    (True, True),
    (True, False),
    (False, True),
    (False, False),
]


def run_trail(app, n, changes, backend, *, memoize=True, optimize_flag=True,
              coarse=False, seed=7):
    """One full run: initial output/meter plus one snapshot per change."""
    rng = random.Random(seed)
    data = app.make_data(n, rng)
    engine = Engine()
    instance = app.instance(
        engine,
        backend=backend,
        memoize=memoize,
        optimize_flag=optimize_flag,
        coarse=coarse,
    )
    input_value, handle = app.make_sa_input(engine, data)
    output = instance.apply(input_value)
    trail = [(app.readback(output), engine.meter.snapshot())]
    for step in range(changes):
        app.apply_change(handle, rng, step)
        engine.propagate()
        trail.append((app.readback(output), engine.meter.snapshot()))
    return trail


def assert_backends_agree(app, n, changes, **kwargs):
    interp = run_trail(app, n, changes, "interp", **kwargs)
    for backend in BACKENDS:
        if backend == "interp":
            continue
        other = run_trail(app, n, changes, backend, **kwargs)
        for step, ((out_i, meter_i), (out_c, meter_c)) in enumerate(
            zip(interp, other)
        ):
            # Outputs must be identical -- all backends perform the same
            # arithmetic in the same order, so even floats match
            # bit-for-bit.
            assert out_i == out_c, (
                f"{app.name}: outputs diverge at step {step}\n"
                f"  interp: {out_i!r}\n  {backend}: {out_c!r}"
            )
            assert meter_i == meter_c, (
                f"{app.name}: meters diverge at step {step}\n"
                f"  interp: {meter_i!r}\n  {backend}: {meter_c!r}"
            )


@pytest.mark.parametrize("name", sorted(APP_SIZES))
@pytest.mark.parametrize("memoize,optimize_flag", GRID)
def test_backends_agree(name, memoize, optimize_flag):
    n, changes = APP_SIZES[name]
    assert_backends_agree(
        REGISTRY[name], n, changes,
        memoize=memoize, optimize_flag=optimize_flag,
    )


def test_registry_fully_covered():
    """New apps must join the differential grid."""
    assert set(APP_SIZES) == set(REGISTRY)


@pytest.mark.parametrize("name", ["map", "filter"])
def test_backends_agree_coarse(name):
    """The CPS-emulation mode's extra indirections also stage identically."""
    assert_backends_agree(
        REGISTRY[name], 12, 5,
        memoize=True, optimize_flag=False, coarse=True,
    )
