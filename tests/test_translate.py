"""Type-directed translation tests (repro.core.translate).

Checks the structure of the generated self-adjusting code against the
paper's examples (Figures 2 and 4) and the behavioral contract: the
translated program computes the same outputs as the conventional one.
"""

from repro.core import sxml as S
from repro.core.optimize import count_primitives
from repro.core.pipeline import compile_program


MAP_SRC = """
datatype cell = Nil | Cons of int * cell $C
fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h + 1, mapf t)
val main : cell $C -> cell $C = mapf
"""


def test_map_primitive_counts():
    """map needs exactly one mod, one read, and a memoized recursive call
    (plus one write per case arm)."""
    program = compile_program(MAP_SRC)
    counts = program.primitive_counts()
    assert counts["mod"] == 1
    assert counts["read"] == 1
    assert counts["write"] == 2
    assert counts["memo"] == 1


def test_unoptimized_map_has_more_primitives():
    optimized = compile_program(MAP_SRC).primitive_counts()
    unoptimized = compile_program(MAP_SRC, optimize_flag=False).primitive_counts()
    assert unoptimized["mod"] >= optimized["mod"]
    assert unoptimized["read"] >= optimized["read"]
    total_opt = sum(optimized.values())
    total_unopt = sum(unoptimized.values())
    assert total_unopt > total_opt


def test_memoize_flag_controls_memo_apps():
    program = compile_program(MAP_SRC, memoize=False)
    assert program.primitive_counts()["memo"] == 0


def test_coarse_mode_adds_indirections():
    coarse = compile_program(MAP_SRC, optimize_flag=False, coarse=True)
    plain = compile_program(MAP_SRC, optimize_flag=False)
    assert coarse.primitive_counts()["mod"] > plain.primitive_counts()["mod"]


def test_figure2_shape_changeable_multiply():
    """fn (a, b) => a * b over changeable reals must translate to
    Mod (Read a (Read b (Write (a' * b')))) -- paper Figure 2."""
    src = """
    val main : (real $C * real $C) -> real $C = fn (a, b) => a * b
    """
    program = compile_program(src)
    text = program.dump_translated()
    counts = program.primitive_counts()
    assert counts["mod"] == 1
    assert counts["read"] == 2
    assert counts["write"] == 1
    assert "read" in text and "write" in text and "mod" in text


def test_stable_code_untouched():
    src = "val main = fn x => x * 2 + 1"
    program = compile_program(src)
    counts = program.primitive_counts()
    assert counts == {"mod": 0, "read": 0, "write": 0, "memo": 0}


def test_selection_functions_are_read_free():
    """Functions that merely select changeable data (transpose-style) get
    no reads at all."""
    src = """
    type matrix = ((real $C) vector) vector
    fun transpose b =
      vtabulate (vlength (vsub (b, 0)), fn i =>
        vtabulate (vlength b, fn j => vsub (vsub (b, j), i)))
    val main : matrix -> matrix = transpose
    """
    counts = compile_program(src).primitive_counts()
    assert counts["read"] == 0
    assert counts["mod"] == 0


def test_ref_becomes_mod_write():
    """Paper Figure 4: ref x ~~> mod (write x)."""
    src = "val main = fn x => ref (x + 1)"
    program = compile_program(src)
    counts = program.primitive_counts()
    assert counts["mod"] == 1
    assert counts["write"] == 1
    # No BRef survives translation.
    assert "ref " not in program.dump_translated()


def test_deref_aliases_and_reads_at_use():
    src = "val main = fn x => let val r = ref x in !r + 1 end"
    program = compile_program(src)
    counts = program.primitive_counts()
    assert counts["read"] == 1  # the use in +, not the deref itself


def test_assign_becomes_impwrite():
    src = """
    val main = fn x =>
      let val r = ref 0 in (r := x; !r) end
    """
    program = compile_program(src)
    text = program.dump_translated()
    assert ":=" in text  # BAssign survives as the imperative write


def test_changeable_constant_is_boxed():
    """A constant flowing into a changeable position becomes Mod (Write c)
    (visible for the vreduce identity, as in Figure 2's Mod (Write 0))."""
    src = """
    val main : (real $C) vector -> real $C =
      fn v => vreduce (v, 0.0, fn (x, y) => x + y)
    """
    text = compile_program(src).dump_translated()
    assert "mod (write 0.0)" in text


def test_changeable_if_reads_condition():
    src = "val main : bool $C -> int $C = fn b => if b then 1 else 2"
    program = compile_program(src)
    counts = program.primitive_counts()
    assert counts["read"] == 1
    assert counts["mod"] == 1


def test_translated_equals_conventional_semantics():
    from repro.interp.marshal import ModListInput, plain_list
    from repro.interp.values import list_value_to_python

    program = compile_program(MAP_SRC)
    conv = program.conventional_instance()
    conv_out = conv.apply(plain_list([5, 6, 7]))
    from repro.api import Session

    sa = Session(program)
    xs = ModListInput(sa.engine, [5, 6, 7])
    sa_out = sa.run(xs.head)
    assert list_value_to_python(conv_out) == list_value_to_python(sa_out) == [6, 7, 8]


def test_memo_only_on_recursive_functions():
    src = """
    datatype cell = Nil | Cons of int * cell $C
    fun helper x = x + 1
    fun walk l = case l of Nil => 0 | Cons (h, t) => helper h + walk t
    val main : cell $C -> int $C = walk
    """
    program = compile_program(src)
    text = program.dump_translated()
    # walk's recursive call is memoized; helper's call is not (it is
    # letrec-bound though, so both use memo -- check at least walk's).
    assert "memo walk" in text


def test_changeable_function_value_is_read_before_application():
    src = """
    val main = fn (f : (int -> int) $C) => f 3
    """
    program = compile_program(src)
    counts = program.primitive_counts()
    assert counts["read"] >= 1
