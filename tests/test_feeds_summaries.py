"""Maintained reverse-reachability summaries vs. the retired DFS.

Lazy engines answer one question constantly: *does this dirty cell feed
the demanded target?*  The original implementation answered it with a
per-demand memoized DFS over reader edges (``feeds="dfs"``, kept as the
differential baseline); the current default maintains per-modifiable
reachability bitsets incrementally as the trace rewires
(``feeds="summary"``).  Both must produce identical *outputs* under
every app, backend, and fault scenario -- but not identical deferral
decisions: the DFS memoizes positive verdicts for a whole drain, so it
may run an edge whose relevance has since died, while the summaries are
exact (modulo drain-local monotonicity, see ``_note_edge_death``).

Sections:

1. **Differential**: summary-vs-dfs twin sessions across apps x
   backends, stepwise and burst, outputs compared after every change.
2. **Oracle**: the same runs with ``feeds_oracle=True``, where every
   summary read is checked against an exact BFS -- divergence raises
   :class:`FeedsOracleError` instead of silently mis-deferring.
3. **Chaos**: budget-interrupted resumes, rollback and rebuild recovery,
   hazard unwinds, and snapshot -> restore -> demand, all under the
   summary impl with the oracle riding along.
4. **Unit**: root registration, upstream growth, edge-death
   invalidation and the deferred-death flush, UNIV edges, and sibling
   cones surviving a partial demand.
"""

import random

import pytest

from repro.api import Session, values_close
from repro.apps import REGISTRY
from repro.obs.invariants import check_trace
from repro.sac.engine import UNIV, Engine
from repro.sac.exceptions import (
    PropagationBudgetExceeded,
    ReexecutionError,
)

BACKENDS = ["interp", "compiled", "stack"]

#: Apps with structurally distinct traces: keyed sharing (msort),
#: data-dependent partitions (qsort), cutoffs (filter), tuple-heavy
#: output (mat-add), and a flat numeric pipeline (vec-mult).
APPS = {
    "filter": (16, 6),
    "qsort": (16, 6),
    "msort": (16, 6),
    "vec-mult": (16, 6),
    "mat-add": (6, 4),
}


def _twin(name, backend, *, oracle=False, seed=7):
    """A (summary, dfs) session pair on identical data."""
    app = REGISTRY[name]
    n, changes = APPS[name]
    rng_s, rng_d = random.Random(seed), random.Random(seed)
    summary = Session(
        app, backend=backend, mode="lazy", feeds="summary",
        feeds_oracle=oracle,
    )
    dfs = Session(app, backend=backend, mode="lazy", feeds="dfs")
    out_s = summary.run(data=app.make_data(n, rng_s))
    out_d = dfs.run(data=app.make_data(n, rng_d))
    return app, changes, summary, dfs, out_s, out_d, rng_s, rng_d


# ----------------------------------------------------------------------
# 1. Differential: summary vs dfs, stepwise and burst


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(APPS))
def test_summary_matches_dfs_stepwise(name, backend):
    """Per change, both impls demand the full output and must agree."""
    app, changes, summary, dfs, out_s, out_d, rng_s, rng_d = _twin(
        name, backend
    )
    assert summary.feeds == "summary" and dfs.feeds == "dfs"
    for step in range(changes):
        app.apply_change(summary.input_handle, rng_s, step)
        app.apply_change(dfs.input_handle, rng_d, step)
        summary.demand()
        dfs.demand()
        assert values_close(app.readback(out_s), app.readback(out_d)), (
            f"{name} [{backend}]: summary diverges from dfs at step {step}"
        )
    check_trace(summary.engine)
    check_trace(dfs.engine)


@pytest.mark.parametrize("name", sorted(APPS))
def test_summary_matches_dfs_after_edit_burst(name):
    """All edits staged, then one demand each: the burst regime where
    the maintained summaries see the most rewiring before being read."""
    app, changes, summary, dfs, out_s, out_d, rng_s, rng_d = _twin(
        name, "interp", seed=29
    )
    for step in range(changes):
        app.apply_change(summary.input_handle, rng_s, step)
        app.apply_change(dfs.input_handle, rng_d, step)
    summary.demand()
    dfs.demand()
    assert values_close(app.readback(out_s), app.readback(out_d))
    # Second demands are free under BOTH impls (meter-exact laziness).
    for session in (summary, dfs):
        again = session.demand()
        assert again.reexecuted == 0 and again.drained == 0


def test_summary_deep_burst_matches_eager():
    """The scenario that shook out the monotone-drain bug: msort at
    n=128, 32 staged edits, one deep demand, against the eager oracle."""
    app = REGISTRY["msort"]
    rng_e, rng_l = random.Random(3), random.Random(3)
    eager = Session(app)
    lazy = Session(app, mode="lazy", feeds="summary", feeds_oracle=True)
    out_e = eager.run(data=app.make_data(128, rng_e))
    out_l = lazy.run(data=app.make_data(128, rng_l))
    for step in range(32):
        app.apply_change(eager.input_handle, rng_e, step)
        eager.propagate()
        app.apply_change(lazy.input_handle, rng_l, step)
    lazy.demand()
    assert values_close(app.readback(out_e), app.readback(out_l))
    check_trace(lazy.engine)


# ----------------------------------------------------------------------
# 2. Oracle: maintained bits == exact BFS at every query


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(APPS))
def test_oracle_green_across_apps(name, backend):
    """Every relevance query under ``feeds_oracle=True``: the maintained
    summary must equal the exact reverse walk (mid-drain it may only be
    a superset, never miss a reachable root)."""
    app = REGISTRY[name]
    n, changes = APPS[name]
    rng = random.Random(13)
    session = Session(
        app, backend=backend, mode="lazy", feeds="summary",
        feeds_oracle=True,
    )
    session.run(data=app.make_data(n, rng))
    for step in range(changes):
        app.apply_change(session.input_handle, rng, step)
        session.demand()  # FeedsOracleError here == summary bug


def test_oracle_env_var_enables_checking(monkeypatch):
    monkeypatch.setenv("REPRO_FEEDS_ORACLE", "1")
    engine = Engine(mode="lazy")
    assert engine.feeds_oracle
    monkeypatch.setenv("REPRO_FEEDS_ORACLE", "0")
    assert not Engine(mode="lazy").feeds_oracle


def test_feeds_impl_env_var_and_validation(monkeypatch):
    monkeypatch.setenv("REPRO_FEEDS", "dfs")
    assert Engine(mode="lazy").feeds_impl == "dfs"
    monkeypatch.delenv("REPRO_FEEDS")
    assert Engine(mode="lazy").feeds_impl == "summary"
    with pytest.raises(ValueError):
        Engine(mode="lazy", feeds="bfs")
    # Session must not silently rebind an adopted engine's impl.
    with pytest.raises(ValueError):
        Session("map", engine=Engine(mode="lazy", feeds="dfs"),
                feeds="summary")


# ----------------------------------------------------------------------
# 3. Chaos: interruption, recovery, hazards, persistence


def _cone(engine, source, label, calls):
    def comp(dest):
        def reader(v):
            calls[label] = calls.get(label, 0) + 1
            engine.write(dest, v * 10)

        engine.read(source, reader)

    return engine.mod(comp)


@pytest.mark.parametrize("feeds", ["summary", "dfs"])
def test_budget_interrupted_demand_resumes(feeds):
    """Interruption mid-drain leaves suspicion AND summary state sound:
    the resumed demand completes with the oracle on."""
    engine = Engine(mode="lazy", feeds=feeds,
                    feeds_oracle=(feeds == "summary"))
    x = engine.make_input(1)

    def mid_comp(dest):
        engine.read(x, lambda v: engine.write(dest, v + 1))

    mid = engine.mod(mid_comp)
    calls = {}
    top = _cone(engine, mid, "top", calls)
    assert engine.demand(top) == 20
    engine.change(x, 10)
    with pytest.raises(PropagationBudgetExceeded):
        engine.demand(top, budget=1)
    assert top.suspect
    assert engine.demand(top) == 110
    check_trace(engine, expect_empty_queue=True)


def test_budget_interrupted_app_demand_resumes_with_oracle():
    """Session-level: interrupt an msort burst demand on a tiny budget,
    then finish; outputs must match the eager twin and the oracle must
    stay green through both the abort and the resume."""
    app = REGISTRY["msort"]
    rng_e, rng_l = random.Random(17), random.Random(17)
    eager = Session(app)
    lazy = Session(app, mode="lazy", feeds="summary", feeds_oracle=True)
    out_e = eager.run(data=app.make_data(64, rng_e))
    out_l = lazy.run(data=app.make_data(64, rng_l))
    for step in range(12):
        app.apply_change(eager.input_handle, rng_e, step)
        eager.propagate()
        app.apply_change(lazy.input_handle, rng_l, step)
    with pytest.raises(PropagationBudgetExceeded):
        lazy.demand(budget=3)
    lazy.demand()
    assert values_close(app.readback(out_e), app.readback(out_l))
    check_trace(lazy.engine)


@pytest.mark.parametrize("on_error", ["rollback", "rebuild"])
def test_recovery_paths_preserve_summary_soundness(on_error):
    """A reader that faults mid-demand forces the recovery machinery
    (rollback restage / full rebuild); the follow-up demand must still
    be exact under the oracle."""
    app = REGISTRY["msort"]
    rng = random.Random(41)
    session = Session(app, mode="lazy", feeds="summary", feeds_oracle=True)
    session.run(data=app.make_data(32, rng))
    for step in range(6):
        app.apply_change(session.input_handle, rng, step)

    real_write = session.engine.write
    hits = {"n": 0}

    def flaky_write(dest, value):
        hits["n"] += 1
        if hits["n"] == 3:  # exactly once, so recovery itself succeeds
            raise ValueError("flaky reader")
        return real_write(dest, value)

    session.engine.write = flaky_write
    stats = session.demand(on_error=on_error)
    session.engine.write = real_write
    assert stats.path == on_error
    session.demand()
    rng_o = random.Random(41)
    oracle = Session(app, mode="lazy", feeds="dfs")
    out_o = oracle.run(data=app.make_data(32, rng_o))
    for step in range(6):
        app.apply_change(oracle.input_handle, rng_o, step)
    oracle.demand()
    # session.output, not a pre-recovery reference: rebuild swaps in a
    # fresh engine and output value.
    assert values_close(app.readback(session.output), app.readback(out_o))


def test_hazard_unwind_with_oracle():
    """The keyed-mod hazard reproducer (msort, 16-edit burst, head-only
    force) under the summary impl with the oracle on: the widen-and-
    retry path must fire and every unwind must leave the summaries
    exact at the next rest point."""
    app = REGISTRY["msort"]
    rng = random.Random(3)
    session = Session(app, mode="lazy", feeds="summary", feeds_oracle=True)
    out = session.run(data=app.make_data(64, rng))
    for step in range(16):
        app.apply_change(session.input_handle, rng, step)
    session.get(out)
    assert session.engine.meter.demand_hazards > 0
    check_trace(session.engine)
    session.demand()
    check_trace(session.engine)


def test_snapshot_restore_demand_roundtrip(tmp_path):
    """Snapshot mid-laziness (staged suspects, live summaries), restore,
    demand: the restored engine's summaries must be as sound as the
    saved one's -- enforced by restoring with the oracle env flag on."""
    app = REGISTRY["qsort"]
    rng = random.Random(19)
    session = Session(app, mode="lazy", feeds="summary")
    session.run(data=app.make_data(24, rng))
    for step in range(4):
        app.apply_change(session.input_handle, rng, step)
    session.demand()  # live summary state to round-trip
    for step in range(4, 8):
        app.apply_change(session.input_handle, rng, step)  # staged dirt
    path = str(tmp_path / "mid.snap")
    session.snapshot(path)

    restored = Session.restore(path)
    assert restored.feeds == "summary"
    restored.engine.feeds_oracle = True
    restored.demand()
    session.demand()
    assert values_close(
        app.readback(session.output), app.readback(restored.output)
    )
    check_trace(restored.engine)


# ----------------------------------------------------------------------
# 4. Unit: the bitset machinery itself


def test_demand_registers_root_and_grows_upstream():
    engine = Engine(mode="lazy", feeds="summary", feeds_oracle=True)
    x = engine.make_input(1)
    calls = {}
    y = _cone(engine, x, "y", calls)
    engine.change(x, 2)
    engine.demand(y)
    assert y.root_bit and y.root_bit != UNIV
    # The feeder's summary reaches the root through the reader edge.
    assert x.fsum_valid and (x.fsum & y.root_bit)
    assert engine.meter.feeds_roots >= 1
    assert engine.meter.feeds_hits >= 1


def test_sibling_cone_stays_suspect_after_partial_demand():
    """Demanding y1 must not bleach y2's suspicion or summary state:
    the sibling's dirt is still pending and still reaches its root."""
    engine = Engine(mode="lazy", feeds="summary", feeds_oracle=True)
    calls = {}
    x1, x2 = engine.make_input(1), engine.make_input(2)
    y1 = _cone(engine, x1, "y1", calls)
    y2 = _cone(engine, x2, "y2", calls)
    engine.change(x1, 5)
    engine.change(x2, 7)
    assert engine.demand(y1) == 50
    assert calls == {"y1": 2, "y2": 1}
    assert y2.suspect and not y1.suspect
    # y1 became a registered root during its drain; its bit must be out
    # of the dirty-roots union while y2's queued dirt keeps y2 suspect.
    assert y1.root_bit and not (engine._dirty_roots & y1.root_bit)
    assert engine.demand(y2) == 70
    assert calls["y2"] == 2
    assert y2.root_bit and engine._dirty_roots == 0
    check_trace(engine, expect_empty_queue=True)


def test_edge_death_invalidates_upstream_summary():
    """Rewiring a conditional off a feeder kills its edge; the feeder's
    summary must stop claiming it reaches the root."""
    engine = Engine(mode="lazy", feeds="summary", feeds_oracle=True)
    flag = engine.make_input(True)
    a, b = engine.make_input(10), engine.make_input(20)

    def comp(dest):
        def on_flag(f):
            src = a if f else b
            engine.read(src, lambda v: engine.write(dest, v))

        engine.read(flag, on_flag)

    y = engine.mod(comp)
    assert engine.demand(y) == 10  # clean: roots register on dirty drains
    engine.change(flag, False)
    assert engine.demand(y) == 20  # registers y's root; a's edge dies
    rb = y.root_bit
    assert rb
    # a's edge died during the drain; after the deferred flush and the
    # next query its summary must not reach y's root any more.
    assert not (engine._bits(a) & rb)
    assert engine._bits(b) & rb
    engine.change(a, 11)
    before = engine.meter.edges_reexecuted
    assert engine.demand(y) == 20  # a no longer feeds y: zero work
    assert engine.meter.edges_reexecuted == before
    check_trace(engine)


def test_deferred_deaths_flush_at_drain_exit():
    """Within a demand drain, edge deaths must NOT shrink summaries
    (drain-local monotonicity); they flush in the drain's finally."""
    engine = Engine(mode="lazy", feeds="summary")
    flag = engine.make_input(True)
    a = engine.make_input(10)

    def comp(dest):
        def on_flag(f):
            if f:
                engine.read(a, lambda v: engine.write(dest, v))
            else:
                engine.write(dest, -1)

        engine.read(flag, on_flag)

    y = engine.mod(comp)
    engine.demand(y)
    engine.change(flag, False)
    assert engine.demand(y) == -1
    assert not engine._deferred_deaths  # flushed, not leaked
    # The flush ran: a's stale claim on y's root is gone by now.
    assert not (engine._bits(a) & y.root_bit)
    check_trace(engine)


def test_none_dest_edges_are_universal():
    """A ``dest=None`` edge (a read re-executed with an empty destination
    stack) can feed anything the engine ever demands, so its source
    carries the UNIV bit and every drain treats it as relevant."""
    engine = Engine(mode="lazy", feeds="summary", feeds_oracle=True)
    x = engine.make_input(1)
    seen = []
    engine._reexec_depth += 1  # the state in which None-dest reads occur
    try:
        engine.read(x, seen.append)
    finally:
        engine._reexec_depth -= 1
    assert engine._bits(x) & UNIV
    calls = {}
    x2 = engine.make_input(2)
    y = _cone(engine, x2, "y", calls)
    engine.change(x, 9)
    engine.change(x2, 3)
    # Demanding an unrelated cell still drains x's universal edge.
    engine.demand(y)
    assert seen == [1, 9]
    check_trace(engine)


def test_summary_counters_zero_on_eager_and_dfs_engines():
    for engine in (Engine(), Engine(mode="lazy", feeds="dfs")):
        m = engine.make_input(3)
        engine.change(m, 4)
        if engine.lazy:
            engine.demand(m)
        else:
            engine.propagate()
        snap = engine.meter.snapshot()
        assert snap["feeds_hits"] == 0
        assert snap["feeds_updates"] == 0
        assert snap["feeds_recomputes"] == 0
        assert snap["feeds_roots"] == 0


def test_full_propagate_resets_dirty_roots():
    engine = Engine(mode="lazy", feeds="summary", feeds_oracle=True)
    x = engine.make_input(1)
    calls = {}
    y = _cone(engine, x, "y", calls)
    engine.demand(y)
    engine.change(x, 2)
    engine.propagate()  # eager-style flush on a lazy engine
    assert engine._dirty_roots == 0
    assert not y.suspect and not x.suspect
    assert engine.demand(y) == 20
