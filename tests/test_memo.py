"""Memoization and trace-reuse tests (repro.sac.memo discipline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sac import Engine
from repro.sac.api import IdKey, ModList, memo_key


def sa_map(engine, f, head):
    """The canonical memoized list map over ModList cells."""

    def go(l):
        def comp(dest):
            def on_cell(cell):
                if cell is None:
                    engine.write(dest, None)
                else:
                    h, t = cell
                    r = engine.memo(("map", IdKey(t)), lambda: go(t))
                    engine.write(dest, (f(h), r))

            engine.read(l, on_cell)

        return engine.mod(comp)

    return go(head)


def read_out(m):
    out = []
    cell = m.peek()
    while cell is not None:
        out.append(cell[0])
        cell = cell[1].peek()
    return out


def test_memo_records_and_returns_result():
    engine = Engine()
    calls = []
    result = engine.memo("k", lambda: calls.append(1) or 42)
    assert result == 42
    assert engine.meter.memo_misses == 1


def test_no_reuse_outside_propagation():
    """During the initial run there is no reuse zone: same key recomputes."""
    engine = Engine()
    count = [0]

    def thunk():
        count[0] += 1
        return count[0]

    assert engine.memo("k", thunk) == 1
    assert engine.memo("k", thunk) == 2
    assert engine.meter.memo_hits == 0


def test_insert_hits_memo_and_is_constant_work():
    engine = Engine()
    xs = ModList(engine, list(range(100)))
    out = sa_map(engine, lambda x: x + 1, xs.head)
    before = engine.meter.reads_executed
    xs.insert(50, 999)
    engine.propagate()
    # Exactly one read re-executes; the suffix trace is spliced via memo.
    assert engine.meter.reads_executed - before == 1
    assert engine.meter.memo_hits >= 1
    assert read_out(out) == [x + 1 for x in xs.to_python()]


def test_delete_hits_memo():
    engine = Engine()
    xs = ModList(engine, list(range(50)))
    out = sa_map(engine, lambda x: x * 2, xs.head)
    before = engine.meter.reads_executed
    xs.remove(25)
    engine.propagate()
    assert engine.meter.reads_executed - before <= 2
    assert read_out(out) == [x * 2 for x in xs.to_python()]


def test_front_and_back_changes():
    engine = Engine()
    xs = ModList(engine, [1, 2, 3])
    out = sa_map(engine, lambda x: -x, xs.head)
    xs.insert(0, 100)
    engine.propagate()
    assert read_out(out) == [-100, -1, -2, -3]
    xs.insert(4, 200)
    engine.propagate()
    assert read_out(out) == [-100, -1, -2, -3, -200]
    xs.remove(0)
    engine.propagate()
    assert read_out(out) == [-1, -2, -3, -200]


def test_batch_of_changes_single_propagation():
    engine = Engine()
    xs = ModList(engine, list(range(20)))
    out = sa_map(engine, lambda x: x + 1, xs.head)
    xs.insert(3, 100)
    xs.insert(10, 200)
    xs.remove(0)
    engine.propagate()
    assert read_out(out) == [x + 1 for x in xs.to_python()]


def test_memo_entry_not_reused_when_stale():
    """After the trace containing an entry is discarded, the entry dies."""
    engine = Engine()
    xs = ModList(engine, [1, 2, 3, 4])
    sa_map(engine, lambda x: x, xs.head)
    # Delete everything: all suffix traces get discarded.
    for _ in range(4):
        xs.remove(0)
        engine.propagate()
    live = sum(
        1
        for entries in engine.memo_table.values()
        for entry in entries
        if not entry.dead
    )
    # Only the Nil-map entry area can remain live.
    assert live <= 1


def test_memo_key_scalars_structural():
    assert memo_key(3) == memo_key(3)
    assert memo_key((1, "a")) == memo_key((1, "a"))
    assert memo_key(3) != memo_key(4)
    assert memo_key(1.5) == memo_key(1.5)


def test_memo_key_mods_by_identity():
    engine = Engine()
    a = engine.make_input(1)
    b = engine.make_input(1)
    assert memo_key(a) == memo_key(a)
    assert memo_key(a) != memo_key(b)
    assert hash(memo_key(a)) != hash(memo_key(b)) or memo_key(a) != memo_key(b)


def test_idkey_holds_reference():
    engine = Engine()
    key = IdKey(engine.make_input(1))
    assert key.obj.peek() == 1  # the wrapped object stays alive


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 999), min_size=0, max_size=30),
    st.lists(st.tuples(st.integers(0, 10**6), st.sampled_from(["ins", "del", "set"]))),
)
def test_random_list_changes_match_reference(initial, ops):
    """Property: memoized map stays equal to Python map under random edits."""
    engine = Engine()
    xs = ModList(engine, initial)
    out = sa_map(engine, lambda x: 3 * x - 1, xs.head)
    for pick, op in ops[:25]:
        if op == "ins" or len(xs) == 0:
            xs.insert(pick % (len(xs) + 1), pick)
        elif op == "del":
            xs.remove(pick % len(xs))
        else:
            xs.set(pick % len(xs), pick)
        engine.propagate()
        assert read_out(out) == [3 * x - 1 for x in xs.to_python()]
