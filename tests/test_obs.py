"""Observability layer tests (repro.obs): event log, DDG export, checker.

The event stream and the Meter are two independent instrumentation paths
through the same engine; cross-checking them against each other catches
missed or double emissions on either side.  The invariant checker is
tested both positively (clean runs pass) and negatively (hand-corrupted
traces and fabricated splices are caught) -- a checker that cannot fail
verifies nothing.
"""

import json
from types import SimpleNamespace

import pytest

from repro.apps import REGISTRY
from repro.obs import (
    EventLog,
    FanoutHook,
    InvariantChecker,
    InvariantViolation,
    TraceHook,
    check_trace,
    ddg_dot,
    ddg_json,
    ddg_snapshot,
)
from repro.sac import Engine


def _run_map(hook, n=12, changes=2):
    """Run the compiled `map` app with ``hook`` attached; return (engine,
    output handle plumbing) after ``changes`` insert/propagate rounds."""
    from repro.api import Session

    session = Session(REGISTRY["map"], hook=hook)
    engine = session.engine
    output = session.run(data=list(range(1, n + 1)))
    for step in range(changes):
        session.input_handle.insert(step, 100 + step)
        engine.propagate()
    return engine, output


# ----------------------------------------------------------------------
# EventLog against the Meter


def test_event_log_counts_match_meter():
    log = EventLog()
    engine, _ = _run_map(log, changes=3)
    counts = log.counts()
    meter = engine.meter

    assert counts["read-start"] == meter.reads_executed
    assert counts["read-end"] == counts["read-start"]  # quiescent: all closed
    assert counts["memo-hit"] == meter.memo_hits
    assert counts["memo-hit"] == counts["splice"]  # every hit was spliced
    assert counts["memo-miss"] == meter.memo_misses
    assert counts["write"] == meter.writes
    assert counts["reexec"] == meter.edges_reexecuted
    assert counts["propagate-begin"] == 3
    assert counts["propagate-end"] == 3

    changed = sum(1 for e in log.of_kind("write") if e.info["changed"])
    assert changed == meter.changed_writes

    # keyed_mod recycling emits mod-create(recycled=True) without bumping
    # the counter; everything else is one-to-one.
    recycled = sum(1 for e in log.of_kind("mod-create") if e.info["recycled"])
    assert counts["mod-create"] == meter.mods_created + recycled


def test_event_log_event_shape_and_jsonl():
    log = EventLog(values=True)
    _run_map(log, n=4, changes=1)
    for line in log.to_jsonl().splitlines():
        record = json.loads(line)
        assert isinstance(record["seq"], int)
        assert isinstance(record["kind"], str)
    seqs = [e.seq for e in log]
    assert seqs == sorted(seqs)
    # Stable naming: every read-start refers to a named mod and edge.
    for event in log.of_kind("read-start"):
        assert event.info["mod"].startswith("m")
        assert event.info["edge"].startswith("r")


def test_event_log_maxlen_bound_keeps_newest():
    log = EventLog(maxlen=10)
    _run_map(log, n=8, changes=1)
    assert len(log) == 10
    events = list(log)
    assert events[-1].kind == "propagate-end"  # newest kept, oldest dropped
    assert events[0].seq > 0


def test_event_log_clear():
    log = EventLog()
    _run_map(log, n=4, changes=0)
    assert len(log) > 0
    log.clear()
    assert len(log) == 0


# ----------------------------------------------------------------------
# FanoutHook


def test_fanout_forwards_to_all_hooks():
    log_a, log_b = EventLog(), EventLog()
    checker = InvariantChecker()
    engine, _ = _run_map(FanoutHook([log_a, log_b, checker]), changes=2)
    assert log_a.counts() == log_b.counts()
    assert len(log_a) > 0
    # on_attach reached every member.
    assert log_a.engine is engine
    assert checker.engine is engine
    assert checker.checks["full_trace"] == 2


# ----------------------------------------------------------------------
# check_trace: passes on clean traces, catches hand-made corruption


def _two_read_engine():
    engine = Engine()
    m = engine.make_input(3)
    k = engine.make_input(4)
    engine.mod(lambda d: engine.read(m, lambda v: engine.write(d, v * v)))
    engine.mod(lambda d: engine.read(k, lambda v: engine.write(d, v + 1)))
    (edge_m,) = m.readers
    (edge_k,) = k.readers
    return engine, edge_m, edge_k


def test_check_trace_clean_report():
    engine, _, _ = _two_read_engine()
    report = check_trace(engine)
    assert report.reads == 2
    assert report.queued == 0
    assert "trace OK" in str(report)


def test_check_trace_detects_unregistered_edge():
    engine, edge, _ = _two_read_engine()
    edge.mod.readers.discard(edge)
    with pytest.raises(InvariantViolation, match="not registered"):
        check_trace(engine)


def test_check_trace_detects_dead_record_on_live_stamp():
    engine, edge, _ = _two_read_engine()
    edge.dead = True
    with pytest.raises(InvariantViolation, match="dead record"):
        check_trace(engine)


def test_check_trace_detects_dirty_unqueued_edge():
    engine, edge, _ = _two_read_engine()
    edge.dirty = True  # dirtied behind the engine's back: never queued
    with pytest.raises(InvariantViolation, match="not queued"):
        check_trace(engine)


def test_check_trace_detects_nonempty_queue_when_required():
    engine, edge, _ = _two_read_engine()
    edge.dirty = True
    engine.queue.append((edge.start.key, 0, edge))
    check_trace(engine)  # dirty *and* queued is fine in general...
    with pytest.raises(InvariantViolation, match="queue not empty"):
        check_trace(engine, expect_empty_queue=True)  # ...but not post-prop


def test_check_trace_detects_clean_queued_edge():
    engine, edge, _ = _two_read_engine()
    engine.queue.append((edge.start.key, 0, edge))  # live, not dirty
    with pytest.raises(InvariantViolation, match="not dirty"):
        check_trace(engine)


def test_check_trace_detects_heap_violation():
    engine, edge_m, edge_k = _two_read_engine()
    assert edge_m.start.label < edge_k.start.label
    edge_m.dirty = edge_k.dirty = True
    # later stamp at the root
    engine.queue.extend([(edge_k.start.key, 0, edge_k), (edge_m.start.key, 1, edge_m)])
    with pytest.raises(InvariantViolation, match="min-heap"):
        check_trace(engine)


def test_check_trace_detects_stale_queue_snapshot():
    engine, edge, _ = _two_read_engine()
    edge.dirty = True
    engine.queue.append((edge.start.key - 1, 0, edge))  # snapshot disagrees
    assert engine._queue_epoch == engine.order.epoch
    with pytest.raises(InvariantViolation, match="stale"):
        check_trace(engine)


# ----------------------------------------------------------------------
# InvariantChecker: dynamic discipline (driven with fabricated events)


def _stamp(label):
    return SimpleNamespace(label=label)


def _checker_with(now=50, limit=100):
    checker = InvariantChecker()
    checker.engine = SimpleNamespace(
        now=_stamp(now),
        reuse_limit=None if limit is None else _stamp(limit),
    )
    return checker


def test_checker_accepts_contained_splice():
    checker = _checker_with()
    checker.on_memo_hit(SimpleNamespace(start=_stamp(60), end=_stamp(90)))
    assert checker.checks["splice_containment"] == 1


def test_checker_rejects_splice_outside_reuse_zone():
    checker = _checker_with(limit=None)
    with pytest.raises(InvariantViolation, match="outside any reuse zone"):
        checker.on_memo_hit(SimpleNamespace(start=_stamp(60), end=_stamp(90)))


def test_checker_rejects_splice_behind_cursor():
    checker = _checker_with(now=70)
    with pytest.raises(InvariantViolation, match="behind the cursor"):
        checker.on_memo_hit(SimpleNamespace(start=_stamp(60), end=_stamp(90)))


def test_checker_rejects_splice_escaping_zone():
    checker = _checker_with()
    with pytest.raises(InvariantViolation, match="escapes the reuse zone"):
        checker.on_memo_hit(SimpleNamespace(start=_stamp(60), end=_stamp(200)))


def test_checker_rejects_out_of_order_queue_pops():
    checker = InvariantChecker()
    checker.on_propagate_begin(2)
    checker.on_reexec(SimpleNamespace(start=_stamp(10)))
    with pytest.raises(InvariantViolation, match="out of timestamp order"):
        checker.on_reexec(SimpleNamespace(start=_stamp(5)))


def test_checker_rejects_misnested_read_intervals():
    checker = InvariantChecker()
    outer, inner = SimpleNamespace(), SimpleNamespace()
    checker.on_read_start(outer)
    checker.on_read_start(inner)
    with pytest.raises(InvariantViolation, match="closed out of order"):
        checker.on_read_end(outer)


def test_checker_clean_run_reports_counts():
    checker = InvariantChecker()
    _run_map(checker, changes=2)
    assert checker.checks["full_trace"] == 2
    assert checker.checks["read_nesting"] > 0
    assert checker.checks["splice_containment"] > 0
    assert checker.total_checks() == sum(checker.checks.values())
    assert checker.last_report is not None and checker.last_report.queued == 0


# ----------------------------------------------------------------------
# DDG export


def test_ddg_snapshot_structure():
    engine, _ = _run_map(TraceHook(), n=6, changes=1)
    snap = ddg_snapshot(engine)
    assert snap["trace_size"] == engine.trace_size()
    assert snap["live_stamps"] == engine.order.n_live
    assert len(snap["reads"]) == engine.meter.live_edges
    assert len(snap["memos"]) == engine.meter.live_memo_entries
    ids = {m["id"] for m in snap["mods"]}
    for read in snap["reads"]:
        assert read["mod"] in ids
        assert read["end"] is None or read["start"] < read["end"]
        assert not read["dirty"]  # quiescent
        assert read["parent"] is None or read["parent"].startswith(("r", "e"))
    # n_readers totals the read->mod edges.
    assert sum(m["n_readers"] for m in snap["mods"]) == len(snap["reads"])


def test_ddg_json_round_trips():
    engine, _ = _run_map(TraceHook(), n=4, changes=0)
    snap = json.loads(ddg_json(engine))
    assert set(snap) >= {"mods", "reads", "memos", "meter", "trace_size"}


def test_ddg_dot_shape():
    engine, _ = _run_map(TraceHook(), n=4, changes=0)
    dot = ddg_dot(engine, title="map-run")
    assert dot.startswith('digraph "map-run" {')
    assert dot.rstrip().endswith("}")
    assert "shape=ellipse" in dot  # modifiables
    assert "shape=box" in dot  # read edges
    assert "shape=diamond" in dot  # memo entries
    assert "style=dashed" in dot  # containment forest
    snap = ddg_snapshot(engine)
    for read in snap["reads"]:
        assert f'{read["id"]} -> {read["mod"]};' in dot


def test_ddg_values_flag():
    engine = Engine()
    m = engine.make_input("hello")
    engine.mod(lambda d: engine.read(m, lambda v: engine.write(d, v.upper())))
    with_values = ddg_snapshot(engine, values=True)
    without = ddg_snapshot(engine, values=False)
    assert any("hello" in mod.get("value", "") for mod in with_values["mods"])
    assert all("value" not in mod for mod in without["mods"])
