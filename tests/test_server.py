"""The SessionPool server: pool semantics, frame protocol, fairness, and
multi-session fault isolation.

Everything here runs real asyncio (via ``asyncio.run`` -- no plugin
dependency) against in-process servers on ephemeral ports or unix
sockets.  The correctness bar throughout is the app's reference function
over the document's *current* marshalled data (``app.handle_data``), the
same oracle the chaos harness uses, so a drained document is checked
against from-scratch truth, not against itself.
"""

import asyncio
import json
import random

import pytest

from repro.api import Session, values_close
from repro.apps import REGISTRY
from repro.obs.faults import FaultInjector, PlantedFault
from repro.obs.invariants import check_trace
from repro.server import (
    Client,
    DocFailedError,
    FairScheduler,
    QuotaExceededError,
    ServerError,
    SessionPool,
    UnknownDocError,
    serve,
)


def _expected(pool, name):
    """From-scratch reference value of a pooled document's output."""
    session = pool.docs[name].session
    return session.app.reference(session.app.handle_data(session.input_handle))


# ----------------------------------------------------------------------
# The handle layer (Session API the wire builds on)


def test_handle_bind_resolve_roundtrip():
    session = Session("vec-reduce", mode="lazy")
    rng = random.Random(0)
    out = session.run(data=session.app.make_data(8, rng))
    name = session.handle(session.input_handle.mods[3], "cell:3")
    assert name == "cell:3"
    assert session.resolve("cell:3") is session.input_handle.mods[3]
    # Idempotent: rebinding the same mod returns the same handle.
    assert session.handle(session.input_handle.mods[3]) == "cell:3"
    # Generated names are stable and fresh.
    auto = session.handle(out)
    assert auto.startswith("mod:")
    assert session.resolve(auto) is out
    assert set(session.handles()) == {"cell:3", auto}


def test_handle_conflicts_and_unknowns_raise():
    session = Session("vec-reduce", mode="lazy")
    rng = random.Random(0)
    session.run(data=session.app.make_data(4, rng))
    mods = session.input_handle.mods
    session.handle(mods[0], "a")
    with pytest.raises(ValueError):
        session.handle(mods[0], "b")  # already bound under another name
    with pytest.raises(ValueError):
        session.handle(mods[1], "a")  # name taken by a different mod
    with pytest.raises(KeyError):
        session.resolve("nope")
    with pytest.raises(TypeError):
        session.handle(42)


def test_edit_and_get_accept_handles():
    from repro.apps.vectors import tree_sum

    session = Session("vec-reduce", mode="lazy")
    rng = random.Random(1)
    out = session.run(data=session.app.make_data(8, rng))
    session.handle(session.input_handle.mods[0], "cell:0")
    session.handle(out, "out")
    assert session.edit("cell:0", 3.5) > 0
    data = session.app.handle_data(session.input_handle)
    assert values_close(session.get("out"), tree_sum(data))
    assert session.get("cell:0") == 3.5


# ----------------------------------------------------------------------
# The fair scheduler


def test_scheduler_round_robin_order():
    sched = FairScheduler()
    assert sched.next() is None
    sched.enqueue("a")
    sched.enqueue("b")
    assert sched.enqueue("a") is False  # idempotent admission
    assert len(sched) == 2
    assert sched.next() == "a"
    sched.requeue("a")  # budget ran out: back of the ring
    assert sched.next() == "b"
    assert sched.next() == "a"
    assert sched.next() is None
    assert sched.stats()["rotations"] == 1


def test_scheduler_discard_removes_everywhere():
    sched = FairScheduler()
    for key in ("a", "b", "c"):
        sched.enqueue(key)
    sched.discard("b")
    assert [sched.next(), sched.next(), sched.next()] == ["a", "c", None]


# ----------------------------------------------------------------------
# Pool semantics (no sockets)


def test_pool_open_edit_demand_oracle():
    async def main():
        pool = SessionPool(mode="lazy", slice_budget=64)
        info = pool.open("doc", app="vec-reduce", n=32, seed=7)
        assert info["cells"] == 32
        await pool.edit("doc", "cell:4", 2.0)
        await pool.edit("doc", "cell:9", 0.5)
        result = await pool.demand("doc")
        assert values_close(result["value"], _expected(pool, "doc"))
        one = await pool.get("doc", "cell:4")
        assert one["value"] == 2.0
        both = await pool.demand("doc", ["out", "cell:9"])
        assert values_close(both["values"][0], _expected(pool, "doc"))
        assert both["values"][1] == 0.5
        await pool.close("doc")
        with pytest.raises(UnknownDocError):
            await pool.get("doc", "out")

    asyncio.run(main())


def test_pool_eager_doc_drains_inline_without_pump():
    async def main():
        pool = SessionPool(mode="eager", slice_budget=8)
        pool.open("doc", app="vec-reduce", n=16, seed=2)
        await pool.edit("doc", "cell:0", 1.25)
        assert not pool.docs["doc"].session.engine.queue
        got = await pool.get("doc", "out")
        assert values_close(got["value"], _expected(pool, "doc"))

    asyncio.run(main())


def test_pool_batch_coalesces_and_lazy_defers():
    async def main():
        pool = SessionPool(mode="lazy", slice_budget=64)
        pool.open("doc", app="vec-reduce", n=16, seed=3)
        result = await pool.batch(
            "doc", [["cell:0", 1.0], ["cell:1", 2.0], ["cell:2", 3.0]]
        )
        assert result["changed"] == 3
        # Lazy: the batch staged without draining.
        assert pool.docs["doc"].session.engine.queue
        got = await pool.demand("doc")
        assert values_close(got["value"], _expected(pool, "doc"))

    asyncio.run(main())


def test_pool_many_sessions_fairly_sliced():
    """Many eager documents with staged work and a tiny slice budget:
    every ack arrives, every doc matches its oracle, and the scheduler
    actually rotated (no document drained in one monopoly)."""

    async def main():
        pool = SessionPool(mode="eager", slice_budget=4)
        await pool.start()
        docs = [f"doc{i}" for i in range(12)]
        for i, name in enumerate(docs):
            pool.open(name, app="vec-reduce", n=32, seed=i)

        async def hammer(name, seed):
            rng = random.Random(seed)
            for _ in range(4):
                cell = f"cell:{rng.randrange(32)}"
                await pool.edit(name, cell, 0.5 + rng.random())

        await asyncio.gather(*(hammer(n, i) for i, n in enumerate(docs)))
        for name in docs:
            got = await pool.get(name, "out")
            assert values_close(got["value"], _expected(pool, name))
        assert pool.scheduler.stats()["rotations"] > 0
        await pool.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# The frame protocol over real sockets


def test_protocol_roundtrip_tcp():
    async def main():
        pool = SessionPool(mode="lazy", slice_budget=64)
        server = await serve(pool)
        host, port = server.sockets[0].getsockname()[:2]
        client = await Client.connect(host, port)

        info = await client.open("sheet", app="vec-reduce", n=16, seed=5)
        assert info["cells"] == 16 and info["mode"] == "lazy"
        r = await client.edit("sheet", "cell:3", 1.5)
        assert r["dirtied"] >= 1
        assert values_close(
            await client.get("sheet", "out"), _expected(pool, "sheet")
        )
        r = await client.batch("sheet", [["cell:0", 2.0], ["cell:1", 0.25]])
        assert r["changed"] == 2
        r = await client.demand("sheet", ["out", "cell:0"])
        assert values_close(r["values"][0], _expected(pool, "sheet"))
        stats = await client.stats("sheet")
        assert stats["edits"] == 3 and stats["batches"] == 1
        pool_stats = await client.stats()
        assert pool_stats["documents"] == 1
        r = await client.close_doc("sheet")
        assert r["closed"] is True

        await client.close()
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())


def test_protocol_roundtrip_unix_socket(tmp_path):
    async def main():
        pool = SessionPool(mode="lazy")
        path = str(tmp_path / "repro.sock")
        server = await serve(pool, path=path)
        client = await Client.connect_unix(path)
        await client.open("doc", app="vec-reduce", n=8, seed=1)
        await client.edit("doc", "cell:2", 0.75)
        assert values_close(
            await client.get("doc", "out"), _expected(pool, "doc")
        )
        await client.close()
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())


def test_protocol_errors_keep_the_connection_alive():
    async def main():
        pool = SessionPool(mode="lazy")
        server = await serve(pool)
        host, port = server.sockets[0].getsockname()[:2]
        reader, writer = await asyncio.open_connection(host, port)

        async def roundtrip(raw: bytes) -> dict:
            writer.write(raw)
            await writer.drain()
            return json.loads(await reader.readline())

        # Malformed JSON, unknown op, unknown doc: each answers ok=false
        # on the same connection instead of dropping it.
        bad = await roundtrip(b"{nope\n")
        assert bad["ok"] is False
        bad = await roundtrip(b'{"op":"warp","doc":"d","id":7}\n')
        assert bad["ok"] is False and bad["id"] == 7
        bad = await roundtrip(b'{"op":"get","doc":"ghost","cell":"out"}\n')
        assert bad["ok"] is False and bad["type"] == "UnknownDocError"
        # ... and the connection still serves real work.
        good = await roundtrip(
            b'{"op":"open","doc":"d","app":"vec-reduce","n":8}\n'
        )
        assert good["ok"] is True and good["cells"] == 8

        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())


def test_many_concurrent_clients_oracle_checked():
    """The spreadsheet-service shape in miniature: concurrent clients on
    separate connections hammer separate documents; every document's
    final output matches its from-scratch reference."""

    async def main():
        pool = SessionPool(mode="lazy", slice_budget=32)
        server = await serve(pool)
        host, port = server.sockets[0].getsockname()[:2]

        async def client_task(idx: int):
            client = await Client.connect(host, port)
            doc = f"doc{idx}"
            await client.open(doc, app="vec-reduce", n=24, seed=idx)
            rng = random.Random(1000 + idx)
            for _ in range(6):
                cell = f"cell:{rng.randrange(24)}"
                await client.edit(doc, cell, 0.5 + rng.random())
                if rng.random() < 0.5:
                    await client.get(doc, "out")
            value = await client.get(doc, "out")
            await client.close()
            return doc, value

        results = await asyncio.gather(*(client_task(i) for i in range(10)))
        for doc, value in results:
            assert values_close(value, _expected(pool, doc))
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Multi-session fault isolation (the chaos satellite)


def test_faulted_doc_recovers_and_siblings_stay_consistent():
    """One pooled document gets a planted fault mid-drain; it recovers by
    rollback, the retry drains clean, and every sibling document stays
    oracle-consistent with an unpoisoned engine."""

    async def main():
        pool = SessionPool(mode="lazy", slice_budget=64, on_error="rollback")
        docs = [f"doc{i}" for i in range(5)]
        for i, name in enumerate(docs):
            pool.open(name, app="vec-reduce", n=16, seed=i)

        victim = pool.docs["doc2"]
        injector = FaultInjector("read", at=1, during="propagate")
        victim.session.engine.attach_hook(injector)

        rng = random.Random(99)
        for name in docs:
            for _ in range(3):
                await pool.edit(name, f"cell:{rng.randrange(16)}", rng.random())
        for name in docs:
            got = await pool.demand(name)
            assert values_close(got["value"], _expected(pool, name))

        assert injector.fired == 1
        assert victim.rollbacks >= 1 and not victim.failed
        snap = pool.stats()
        assert snap["failed"] == 0
        # The fault stayed where it was planted.
        for name in docs:
            doc = pool.docs[name]
            if name != "doc2":
                assert doc.rollbacks == 0 and doc.faults == 0
            assert not doc.session.engine.poisoned
            check_trace(doc.session.engine)

    asyncio.run(main())


def test_persistent_fault_escalates_to_rebuild():
    """A fault that refires on every retry exhausts the rollback budget
    and escalates to a from-scratch rebuild; the document ends healthy
    (rebuild drops the injecting hook) and its handles are re-bound."""

    async def main():
        pool = SessionPool(
            mode="lazy", slice_budget=64, on_error="rollback", max_rollbacks=2
        )
        pool.open("doc", app="vec-reduce", n=16, seed=4)
        doc = pool.docs["doc"]
        doc.session.engine.attach_hook(
            FaultInjector("read", at=0, during="propagate", repeat=True)
        )
        await pool.edit("doc", "cell:5", 2.5)
        got = await pool.demand("doc")
        assert doc.rebuilds == 1
        assert doc.rollbacks <= 2
        assert not doc.failed
        # Handles survived the rebuild by re-binding.
        assert values_close(got["value"], _expected(pool, "doc"))
        await pool.edit("doc", "cell:1", 1.0)
        got = await pool.demand("doc")
        assert values_close(got["value"], _expected(pool, "doc"))

    asyncio.run(main())


def test_unrecoverable_doc_fails_alone():
    """With on_error="raise" a faulting document fails permanently -- and
    only that document: siblings keep serving."""

    async def main():
        pool = SessionPool(mode="lazy", slice_budget=64, on_error="raise")
        pool.open("bad", app="vec-reduce", n=8, seed=0)
        pool.open("good", app="vec-reduce", n=8, seed=1)
        pool.docs["bad"].session.engine.attach_hook(
            FaultInjector("read", at=0, during="propagate", exc=PlantedFault)
        )
        await pool.edit("bad", "cell:0", 2.0)
        await pool.edit("good", "cell:0", 3.0)
        with pytest.raises(DocFailedError):
            await pool.demand("bad")
        assert pool.docs["bad"].failed
        with pytest.raises(DocFailedError):
            await pool.get("bad", "out")
        got = await pool.demand("good")
        assert values_close(got["value"], _expected(pool, "good"))
        assert pool.stats()["failed"] == 1

    asyncio.run(main())


def test_server_error_surfaces_doc_failure_to_client():
    async def main():
        pool = SessionPool(mode="lazy", on_error="raise")
        server = await serve(pool)
        host, port = server.sockets[0].getsockname()[:2]
        client = await Client.connect(host, port)
        await client.open("doc", app="vec-reduce", n=8, seed=0)
        pool.docs["doc"].session.engine.attach_hook(
            FaultInjector("read", at=0, during="propagate")
        )
        await client.edit("doc", "cell:0", 9.0)
        with pytest.raises(ServerError):
            await client.demand("doc")
        # The connection -- and the rest of the pool -- keeps working.
        info = await client.open("doc2", app="vec-reduce", n=8, seed=1)
        assert info["ok"] is True
        await client.close()
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Durability: checkpoints, warm restarts, degraded opens, quotas, frames


@pytest.mark.parametrize("mode", ["eager", "lazy"])
def test_pool_warm_restart_recovers_checkpointed_state(tmp_path, mode):
    """Stop a checkpointing pool, boot a fresh one on the same directory:
    the document comes back warm (snapshot restored, nothing replayed)
    and oracle-consistent, ignoring the cold-open seed arguments."""

    async def main():
        pool = SessionPool(mode=mode, checkpoint_dir=str(tmp_path))
        pool.open("doc", app="vec-reduce", n=16, seed=3)
        await pool.edit("doc", "cell:2", 41.5)
        await pool.edit("doc", "cell:7", -3.25)
        before = (await pool.demand("doc"))["value"]
        await pool.stop()  # final checkpoint absorbs the journal

        reborn = SessionPool(mode=mode, checkpoint_dir=str(tmp_path))
        info = reborn.open("doc", app="vec-reduce", n=16, seed=999)
        assert info["recovered"] is True
        assert info["replayed"] == 0
        got = await reborn.demand("doc")
        assert values_close(got["value"], before)
        assert values_close(got["value"], _expected(reborn, "doc"))
        assert (await reborn.get("doc", "cell:2"))["value"] == 41.5
        # The restored document keeps serving edits durably.
        await reborn.edit("doc", "cell:0", 7.0)
        got = await reborn.demand("doc")
        assert values_close(got["value"], _expected(reborn, "doc"))
        await reborn.stop()

    asyncio.run(main())


def test_pool_replays_journal_suffix_after_simulated_kill(tmp_path):
    """A pool abandoned without stop() (the SIGKILL stand-in: every append
    was fsync'd, no final checkpoint ran) loses zero acknowledged edits:
    the next open replays the journal suffix on top of the snapshot."""

    async def main():
        pool = SessionPool(
            mode="lazy", checkpoint_dir=str(tmp_path), checkpoint_every=10_000
        )
        pool.open("doc", app="vec-reduce", n=16, seed=3)
        await pool.edit("doc", "cell:1", 99.5)
        await pool.edit("doc", "cell:8", -2.0)
        # No stop(), no close(): the process just dies here.

        reborn = SessionPool(mode="lazy", checkpoint_dir=str(tmp_path))
        info = reborn.open("doc", app="vec-reduce", n=16, seed=3)
        assert info["recovered"] is True
        assert info["replayed"] == 2
        assert (await reborn.get("doc", "cell:1"))["value"] == 99.5
        got = await reborn.demand("doc")
        assert values_close(got["value"], _expected(reborn, "doc"))
        await reborn.stop()

    asyncio.run(main())


def test_pool_corrupt_snapshot_degrades_to_cold_open(tmp_path):
    """A corrupted snapshot is detected, counted, and degraded around: the
    document cold-opens and still replays the journal suffix, so the
    acknowledged edits survive even though the snapshot did not."""
    from repro.obs.faults import corrupt_file

    async def main():
        pool = SessionPool(mode="lazy", checkpoint_dir=str(tmp_path))
        pool.open("doc", app="vec-reduce", n=16, seed=3)
        await pool.edit("doc", "cell:1", 99.5)
        snap, _wal = pool._doc_paths("doc")
        corrupt_file(snap, "flip-byte", seed=5)

        reborn = SessionPool(mode="lazy", checkpoint_dir=str(tmp_path))
        info = reborn.open("doc", app="vec-reduce", n=16, seed=3)
        assert info["recovered"] is False
        assert info["replayed"] == 1  # the journal suffix still won
        assert reborn.snapshot_failures == 1
        assert (await reborn.get("doc", "cell:1"))["value"] == 99.5
        got = await reborn.demand("doc")
        assert values_close(got["value"], _expected(reborn, "doc"))
        # The degraded open did not poison the pool: a sibling opens fine.
        reborn.open("doc2", app="vec-reduce", n=8, seed=1)
        got = await reborn.demand("doc2")
        assert values_close(got["value"], _expected(reborn, "doc2"))
        await reborn.stop()

    asyncio.run(main())


def test_pool_recovery_ladder_uses_restore_rung(tmp_path):
    """A persistent fault exhausts the rollback budget; with a checkpoint
    on disk the pool restores from the snapshot (shedding the faulting
    hook with it) instead of rebuilding from scratch."""

    async def main():
        pool = SessionPool(
            mode="lazy",
            checkpoint_dir=str(tmp_path),
            on_error="rollback",
            max_rollbacks=1,
        )
        pool.open("doc", app="vec-reduce", n=16, seed=4)
        doc = pool.docs["doc"]
        doc.session.engine.attach_hook(
            FaultInjector("read", at=0, during="propagate", repeat=True)
        )
        await pool.edit("doc", "cell:5", 2.5)
        got = await pool.demand("doc")
        assert doc.restores == 1
        assert doc.rebuilds == 0
        assert not doc.failed
        assert values_close(got["value"], _expected(pool, "doc"))
        # The journaled edit survived the restore.
        assert (await pool.get("doc", "cell:5"))["value"] == 2.5
        await pool.stop()

    asyncio.run(main())


def test_pool_quota_rejects_before_staging_and_clears_on_drain(tmp_path):
    async def main():
        pool = SessionPool(mode="lazy", max_edits_per_round=2)
        pool.open("doc", app="vec-reduce", n=16, seed=0)
        await pool.edit("doc", "cell:0", 1.0)
        await pool.batch("doc", [["cell:1", 2.0]])
        with pytest.raises(QuotaExceededError):
            await pool.edit("doc", "cell:2", 3.0)
        # The rejected edit never touched the engine or the counters.
        assert pool.docs["doc"].edits == 2
        assert pool.stats()["quota_rejections"] == 1
        # The quota hit scheduled the drain it tells the client to wait
        # for (lazy documents otherwise only drain at reads), so the
        # round is already closed and the retry goes through without an
        # intervening read.
        assert pool.docs["doc"].round_edits == 0
        await pool.edit("doc", "cell:2", 3.0)
        got = await pool.demand("doc")
        assert values_close(got["value"], _expected(pool, "doc"))

        tight = SessionPool(mode="lazy", max_bytes_per_round=8)
        tight.open("doc", app="vec-reduce", n=8, seed=0)
        with pytest.raises(QuotaExceededError) as exc:
            await tight.edit("doc", "cell:0", 0.12345678901234567)
        assert exc.value.kind == "byte"

    asyncio.run(main())


def test_pool_quota_write_only_lazy_client_is_not_starved():
    """Lazy documents drain only at reads, so a write-only client that
    hits its per-round quota must still see the round end: the quota hit
    itself schedules (or, pump-less, runs) the drain its error message
    tells the client to wait for."""

    async def main():
        # Without a pump the drain runs inline on the quota hit, so an
        # immediate retry succeeds -- repeatedly, with no read ever.
        pool = SessionPool(mode="lazy", max_edits_per_round=1)
        pool.open("doc", app="vec-reduce", n=8, seed=0)
        await pool.edit("doc", "cell:0", 1.0)
        for i in range(3):
            with pytest.raises(QuotaExceededError):
                await pool.edit("doc", "cell:1", float(i + 10))
            await pool.edit("doc", "cell:1", float(i + 10))
        got = await pool.demand("doc")
        assert values_close(got["value"], _expected(pool, "doc"))

        # With the pump running the quota hit enqueues the document; the
        # pump's drain closes the round without this client reading.
        pumped = await SessionPool(mode="lazy", max_edits_per_round=1).start()
        pumped.open("doc", app="vec-reduce", n=8, seed=0)
        await pumped.edit("doc", "cell:0", 5.0)
        with pytest.raises(QuotaExceededError):
            await pumped.edit("doc", "cell:1", 6.0)
        for _ in range(1000):
            if pumped.docs["doc"].round_edits == 0:
                break
            await asyncio.sleep(0.001)
        assert pumped.docs["doc"].round_edits == 0
        await pumped.edit("doc", "cell:1", 6.0)
        got = await pumped.demand("doc")
        assert values_close(got["value"], _expected(pumped, "doc"))
        await pumped.stop()

    asyncio.run(main())


def test_protocol_oversized_frame_gets_error_not_disconnect():
    """A frame past max_frame draws a typed error frame; the connection
    survives and keeps serving well-formed requests."""

    async def main():
        pool = SessionPool(mode="lazy")
        server = await serve(pool, max_frame=1024)
        host, port = server.sockets[0].getsockname()[:2]
        reader, writer = await asyncio.open_connection(host, port)

        writer.write(b"x" * 4096 + b"\n")
        await writer.drain()
        err = json.loads(await reader.readline())
        assert err["ok"] is False
        assert err["type"] == "FrameTooLargeError"

        req = {"op": "open", "doc": "d", "app": "vec-reduce", "n": 8}
        writer.write(json.dumps(req).encode() + b"\n")
        await writer.drain()
        resp = json.loads(await reader.readline())
        assert resp["ok"] is True and resp["cells"] == 8

        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        await pool.stop()

    asyncio.run(main())
