"""Durability (DESIGN.md Section 10): snapshots, journals, restores.

The headline property is *meter-exact restoration*: a session saved to
disk and decoded into a fresh process must not only compute the same
values afterwards, it must do the same **work** -- identical meter
counters after identical post-restore edit streams, across all three
backends and both propagation modes, including snapshots taken with
lazy edits staged but unpropagated.  The rest covers the file format's
typed failure model (corrupt/mismatched snapshots never half-restore),
the write-ahead journal's replay semantics (torn tails dropped, corrupt
prefix preserved, replay idempotent), and the end-to-end crash story:
snapshot + journal suffix reproduces every acknowledged edit.
"""

import logging
import os
import random

import pytest

from repro.api import Session, values_close
from repro.apps import REGISTRY
from repro.persist import (
    EditJournal,
    JournalCorruptError,
    JournalError,
    PersistError,
    SnapshotCorruptError,
    SnapshotFormatError,
    SnapshotMismatchError,
    FORMAT_VERSION,
    inspect_snapshot,
    program_key,
    read_header,
    replay_journal,
)

BACKENDS = ["interp", "compiled", "stack"]
MODES = ["eager", "lazy"]

# Scalar-cell app used wherever edits go through wire handles (its
# ``cell:<i>`` mods hold plain floats, like the server's documents).
SCALAR_APP = "vec-reduce"


def _run_session(app_name, n, seed, backend, mode):
    app = REGISTRY[app_name]
    rng = random.Random(seed)
    session = Session(app, backend=backend, mode=mode)
    session.run(data=app.make_data(n, rng))
    return session, app, rng


def _settle(session):
    if session.mode == "lazy":
        session.demand()
    else:
        session.propagate()


def _bind_cells(session):
    handles = []
    for i, mod in enumerate(session.input_handle.mods):
        handles.append(session.handle(mod, f"cell:{i}"))
    return handles


# ----------------------------------------------------------------------
# Meter-exact restore, every backend x mode


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
def test_restore_is_meter_exact_under_random_edits(tmp_path, backend, mode):
    """save -> restore -> k random edits: identical meters and outputs."""
    app_name = "msort"
    session, app, rng = _run_session(app_name, 16, 7, backend, mode)
    for step in range(2):
        app.apply_change(session.input_handle, rng, step)
        _settle(session)

    path = str(tmp_path / "s.snap")
    header = session.snapshot(path)
    assert header["content"]["backend"] == session.backend
    restored = Session.restore(path, app_name)
    assert restored.backend == session.backend
    assert restored.mode == session.mode

    # Identical meters at the restore point...
    assert (
        restored.engine.meter.snapshot() == session.engine.meter.snapshot()
    )
    # ...and after an identical stream of further random edits.  The two
    # sessions share no state, so this holds only if the restored trace
    # (order, queue, memo table, closures) is behaviourally identical.
    rng_live = random.Random(99)
    rng_rest = random.Random(99)
    for step in range(4):
        app.apply_change(session.input_handle, rng_live, step)
        app.apply_change(restored.input_handle, rng_rest, step)
        _settle(session)
        _settle(restored)
        assert values_close(
            app.readback(session.output), app.readback(restored.output)
        )
    assert (
        restored.engine.meter.snapshot() == session.engine.meter.snapshot()
    )
    expected = app.reference(app.handle_data(restored.input_handle))
    assert values_close(app.readback(restored.output), expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_lazy_snapshot_round_trips_staged_edits(tmp_path, backend):
    """A lazy session with staged-but-unpropagated edits snapshots, and
    the restored session owes exactly the same deferred work."""
    session, app, rng = _run_session("msort", 16, 3, backend, "lazy")
    app.apply_change(session.input_handle, rng, 0)
    app.apply_change(session.input_handle, rng, 1)
    assert session.engine.queue  # staged, not yet demanded

    path = str(tmp_path / "staged.snap")
    session.snapshot(path)
    restored = Session.restore(path, "msort")
    assert len(restored.engine.queue) == len(session.engine.queue)

    session.demand()
    restored.demand()
    assert values_close(
        app.readback(restored.output), app.readback(session.output)
    )
    assert (
        restored.engine.meter.snapshot() == session.engine.meter.snapshot()
    )


def test_snapshot_preserves_handles_and_session_counters(tmp_path):
    session, app, _rng = _run_session(SCALAR_APP, 8, 0, "interp", "eager")
    cells = _bind_cells(session)
    session.edit(cells[2], 5.5)
    session.propagate()
    path = str(tmp_path / "h.snap")
    session.snapshot(path)

    restored = Session.restore(path, SCALAR_APP)
    assert set(restored.handles()) == set(session.handles())
    assert restored.get("cell:2") == 5.5
    assert restored.propagations == session.propagations
    # The handle registry is live, not just present: edits through it work.
    assert restored.edit("cell:2", -1.0) >= 0
    restored.propagate()
    assert restored.get("cell:2") == -1.0


def test_snapshot_requires_quiescence(tmp_path):
    from repro.persist.errors import SnapshotStateError

    session, app, _rng = _run_session(SCALAR_APP, 8, 0, "interp", "eager")
    path = str(tmp_path / "q.snap")
    with session.batch():
        session.edit(session.input_handle.mods[0], 9.0)
        with pytest.raises(SnapshotStateError):
            session.snapshot(path)
    session.propagate()
    session.snapshot(path)  # quiescent again: fine


# ----------------------------------------------------------------------
# The typed failure model


def _saved(tmp_path, name="f.snap"):
    session, app, rng = _run_session("msort", 12, 1, "interp", "eager")
    path = str(tmp_path / name)
    session.snapshot(path)
    return session, path


def test_corrupt_snapshot_raises_typed_errors(tmp_path):
    _session, path = _saved(tmp_path)
    blob = open(path, "rb").read()

    open(path, "wb").write(b"not a snapshot at all\n" + blob[22:])
    with pytest.raises(SnapshotFormatError):
        Session.restore(path, "msort")

    open(path, "wb").write(blob[: len(blob) // 2])
    with pytest.raises(SnapshotCorruptError):
        Session.restore(path, "msort")

    i = len(blob) - 100
    open(path, "wb").write(blob[:i] + bytes([blob[i] ^ 1]) + blob[i + 1 :])
    with pytest.raises(SnapshotCorruptError):
        Session.restore(path, "msort")

    open(path, "wb").write(b"")
    with pytest.raises(SnapshotFormatError):
        Session.restore(path, "msort")


def test_mismatched_snapshot_refused(tmp_path):
    _session, path = _saved(tmp_path)
    # Different program: the content address catches it before decode.
    with pytest.raises(SnapshotMismatchError):
        Session.restore(path, "qsort")
    # Different backend, same program text: also part of the address.
    with pytest.raises(SnapshotMismatchError):
        Session.restore(path, "msort", backend="compiled")


def test_program_key_covers_backend_and_mode():
    s1 = Session(REGISTRY["msort"], backend="interp", mode="eager")
    keys = {
        program_key(s1.program, "interp", "eager"),
        program_key(s1.program, "interp", "lazy"),
        program_key(s1.program, "stack", "eager"),
    }
    assert len(keys) == 3


def test_inspect_and_header_do_not_decode(tmp_path):
    session, path = _saved(tmp_path)
    info = inspect_snapshot(path)
    assert info["format"] == FORMAT_VERSION
    assert info["content"]["app"] == "msort"
    assert info["content"]["program_key"] == program_key(
        session.program, session.backend, session.mode
    )
    assert info["meta"]["stamps"] == session.engine.order.n_live
    header = read_header(path)
    assert header["sections"][0]["name"] == "objects"


# ----------------------------------------------------------------------
# The write-ahead journal


def test_journal_append_replay_round_trip(tmp_path):
    path = str(tmp_path / "j.wal")
    with EditJournal(path) as journal:
        assert journal.append([("cell:0", 1.5)]) == 1
        assert journal.append([("cell:1", None), ("cell:2", [1, 2])]) == 2
    assert replay_journal(path) == [
        (1, [("cell:0", 1.5)]),
        (2, [("cell:1", None), ("cell:2", [1, 2])]),
    ]
    # Reopening resumes the sequence (no seq reuse after restart).
    with EditJournal(path) as journal:
        assert journal.append([("cell:0", 2.0)]) == 3
    assert len(replay_journal(path)) == 3


def test_journal_torn_tail_dropped_and_prefix_kept(tmp_path):
    path = str(tmp_path / "torn.wal")
    with EditJournal(path) as journal:
        for i in range(5):
            journal.append([(f"cell:{i}", float(i))])
    blob = open(path, "rb").read()

    # Crash mid-append: truncation near the end loses at most the
    # record(s) it tore, and replay keeps the contiguous prefix.
    record_len = len(blob) // 5
    for cut in (1, 7, record_len + 3):
        open(path, "wb").write(blob[: len(blob) - cut])
        records = replay_journal(path)
        assert 3 <= len(records) <= 4
        assert [s for s, _ in records] == list(range(1, len(records) + 1))

    # Corruption *before* the tail is not a torn write: typed error, and
    # the clean prefix rides on the exception for the caller to keep.
    lines = blob.splitlines(keepends=True)
    bad = lines[1]
    lines[1] = bad[:10] + bytes([bad[10] ^ 1]) + bad[11:]
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError) as exc_info:
        replay_journal(path)
    assert [s for s, _ in exc_info.value.records] == [1]


def test_journal_missing_file_and_bad_values(tmp_path):
    assert replay_journal(str(tmp_path / "absent.wal")) == []
    with EditJournal(str(tmp_path / "v.wal")) as journal:
        with pytest.raises(JournalError):
            journal.append([("cell:0", object())])
        # The failed append must not burn a sequence number.
        assert journal.append([("cell:0", 1.0)]) == 1


def test_session_journals_edits_and_replay_is_idempotent(tmp_path):
    wal = str(tmp_path / "s.wal")
    session, app, _rng = _run_session(SCALAR_APP, 8, 0, "interp", "eager")
    cells = _bind_cells(session)
    session.enable_journal(wal)
    session.edit("cell:0", 4.25)
    with session.batch():
        session.edit("cell:1", 1.0)
        session.edit("cell:2", 2.0)
    session.propagate()
    assert len(replay_journal(wal)) == 3

    # Unnamed modifiables cannot be journaled (recovery could not
    # address them), and the edit is refused before it stages.
    fresh = session.engine.make_input(0.0)
    with pytest.raises(JournalError):
        session.edit(fresh, 1.0)

    # Replay over the already-final state: absolute values cut off.
    before = app.readback(session.output)
    dirtied = session.replay_journal(wal)
    assert dirtied == 3
    session.propagate()
    assert app.readback(session.output) == before


@pytest.mark.parametrize("mode", MODES)
def test_crash_recovery_loses_no_acknowledged_edit(tmp_path, mode):
    """snapshot + journal suffix == every acknowledged edit survives."""
    snap = str(tmp_path / "c.snap")
    wal = str(tmp_path / "c.wal")

    session, app, _rng = _run_session(SCALAR_APP, 10, 2, "interp", mode)
    _bind_cells(session)
    session.snapshot(snap)
    session.enable_journal(wal)
    rng = random.Random(5)
    acked = {}
    for _ in range(7):
        cell = f"cell:{rng.randrange(10)}"
        value = round(rng.uniform(-2, 2), 3)
        session.edit(cell, value)  # durable once edit() returns
        acked[cell] = value
    _settle(session)
    live_out = app.readback(session.output)
    del session  # the "crash": nothing of the live process survives

    recovered = Session.restore(snap, SCALAR_APP)
    assert recovered.replay_journal(wal) == 7
    _settle(recovered)
    assert values_close(app.readback(recovered.output), live_out)
    for cell, value in acked.items():
        assert recovered.get(cell) == value
    expected = app.reference(app.handle_data(recovered.input_handle))
    assert values_close(app.readback(recovered.output), expected)


def test_journal_fsync_off_still_replays(tmp_path):
    wal = str(tmp_path / "nf.wal")
    with EditJournal(wal, fsync=False) as journal:
        journal.append([("cell:0", 1.0)])
    assert len(replay_journal(wal)) == 1


def test_journal_reset_after_checkpoint(tmp_path):
    wal = str(tmp_path / "r.wal")
    with EditJournal(wal) as journal:
        journal.append([("cell:0", 1.0)])
        journal.reset()
        assert replay_journal(wal) == []
        assert journal.append([("cell:1", 2.0)]) == 1


def test_journal_resume_truncates_torn_tail(tmp_path):
    """Appending after a crash must not concatenate onto torn bytes:
    resume truncates back to the last clean record boundary, so records
    appended after the resume replay cleanly instead of reading as
    mid-file corruption (which would silently lose all of them)."""
    path = str(tmp_path / "resume.wal")
    with EditJournal(path) as journal:
        for i in range(3):
            journal.append([(f"cell:{i}", float(i))])
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:-5])  # the crash tore record 3

    with EditJournal(path) as journal:
        assert journal.seq == 2  # the torn record was never durable
        assert journal.append([("cell:7", 7.0)]) == 3
        assert journal.append([("cell:8", 8.0)]) == 4
    records = replay_journal(path)  # must not raise JournalCorruptError
    assert [s for s, _ in records] == [1, 2, 3, 4]
    assert records[-1] == (4, [("cell:8", 8.0)])


def test_journal_resume_truncates_corrupt_tail_line(tmp_path):
    """A complete final line with a bad CRC (a torn multi-page write can
    persist its newline) is equally unusable as an append base: resume
    cuts it off so later appends stay replayable."""
    path = str(tmp_path / "resume2.wal")
    with EditJournal(path) as journal:
        for i in range(3):
            journal.append([(f"cell:{i}", float(i))])
    lines = open(path, "rb").read().splitlines(keepends=True)
    bad = lines[2]
    lines[2] = bad[:5] + bytes([bad[5] ^ 1]) + bad[6:]
    open(path, "wb").write(b"".join(lines))

    with EditJournal(path) as journal:
        assert journal.seq == 2
        assert journal.append([("cell:9", 9.0)]) == 3
    assert [s for s, _ in replay_journal(path)] == [1, 2, 3]


def test_journal_corrupt_final_line_dropped_but_logged(tmp_path, caplog):
    """Replay still treats a CRC-failing final complete line as a torn
    tail (prefix-exact recovery), but the drop is surfaced: it may be
    corruption of an acknowledged record, not a torn write."""
    path = str(tmp_path / "tail.wal")
    with EditJournal(path) as journal:
        for i in range(3):
            journal.append([(f"cell:{i}", float(i))])
    lines = open(path, "rb").read().splitlines(keepends=True)
    bad = lines[2]
    lines[2] = bad[:5] + bytes([bad[5] ^ 1]) + bad[6:]
    open(path, "wb").write(b"".join(lines))

    with caplog.at_level(logging.WARNING, logger="repro.persist.journal"):
        records = replay_journal(path)
    assert [s for s, _ in records] == [1, 2]
    assert any("failed its CRC" in r.message for r in caplog.records)


def test_session_edit_rolls_back_when_journal_write_fails(tmp_path):
    """An edit whose durable append fails is undone before the error
    surfaces: the caller was told the edit failed, so neither reads nor
    a later checkpoint may include its value."""
    wal = str(tmp_path / "fail.wal")
    session, app, _rng = _run_session(SCALAR_APP, 8, 0, "interp", "eager")
    _bind_cells(session)
    journal = session.enable_journal(wal)
    session.edit("cell:0", 4.25)
    before = session.get("cell:1")

    def boom(record):
        raise OSError("disk full")

    journal.commit = boom
    with pytest.raises(OSError):
        session.edit("cell:1", before + 9.0)
    del journal.commit  # back to the real method

    assert session.get("cell:1") == before
    assert len(replay_journal(wal)) == 1  # only the acknowledged edit
    session.propagate()
    expected = app.reference(app.handle_data(session.input_handle))
    assert values_close(app.readback(session.output), expected)


# ----------------------------------------------------------------------
# Raytracer: the deep-trace app with non-list inputs round-trips too


@pytest.mark.parametrize("backend", BACKENDS)
def test_raytracer_snapshot_round_trip(tmp_path, backend):
    session, app, rng = _run_session("raytracer", 6, 1, backend, "eager")
    app.apply_change(session.input_handle, rng, 0)
    session.propagate()
    path = str(tmp_path / "rt.snap")
    session.snapshot(path)
    restored = Session.restore(path, "raytracer")
    assert (
        restored.engine.meter.snapshot() == session.engine.meter.snapshot()
    )
    app.apply_change(session.input_handle, rng, 1)
    app.apply_change(restored.input_handle, random.Random(1), 1)
    # Drive the restored copy with an identical change: same rng state is
    # not reproducible here, so instead compare against the reference.
    session.propagate()
    restored.propagate()
    assert values_close(
        app.readback(restored.output),
        app.reference(app.handle_data(restored.input_handle)),
    )


# ----------------------------------------------------------------------
# PersistError taxonomy sanity


def test_all_persist_errors_are_persist_errors():
    for exc in (
        SnapshotCorruptError,
        SnapshotFormatError,
        SnapshotMismatchError,
        JournalError,
        JournalCorruptError,
    ):
        assert issubclass(exc, PersistError)
