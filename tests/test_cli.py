"""CLI tests (python -m repro)."""

import pytest

from repro.__main__ import main

SOURCE = """
datatype cell = Nil | Cons of int * cell $C
fun mapf l = case l of Nil => Nil | Cons (h, t) => Cons (h + 1, mapf t)
val main : cell $C -> cell $C = mapf
"""


@pytest.fixture()
def lml_file(tmp_path):
    path = tmp_path / "demo.lml"
    path.write_text(SOURCE)
    return str(path)


def test_compile_ok(lml_file, capsys):
    assert main(["compile", lml_file]) == 0
    out = capsys.readouterr().out
    assert "compiled OK" in out
    assert "mod=1" in out


def test_compile_dump(lml_file, capsys):
    assert main(["compile", lml_file, "--dump"]) == 0
    out = capsys.readouterr().out
    assert "read" in out and "write" in out and "memo" in out


def test_compile_unoptimized_has_more_primitives(lml_file, capsys):
    assert main(["compile", lml_file, "--no-optimize", "--counts"]) == 0
    out = capsys.readouterr().out
    assert "mod=3" in out


def test_compile_missing_file(capsys):
    assert main(["compile", "/does/not/exist.lml"]) == 1
    assert "error" in capsys.readouterr().err


def test_compile_type_error(tmp_path, capsys):
    path = tmp_path / "bad.lml"
    path.write_text("val main = 1 + true")
    assert main(["compile", str(path)]) == 1
    assert "error" in capsys.readouterr().err


def test_verify_app(capsys):
    assert main(["verify", "map", "-n", "16", "--changes", "4"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_unknown_app(capsys):
    assert main(["verify", "nosuchapp"]) == 1


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "raytracer" in out and "block-mat-mult" in out


# ----------------------------------------------------------------------
# trace subcommand


def test_trace_writes_ddg_and_events(tmp_path, capsys):
    out = str(tmp_path)
    rc = main(
        ["trace", "map", "-n", "12", "--changes", "2", "--out", out, "--events"]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "invariants: OK" in text
    assert "events:" in text and "meter:" in text

    import json

    ddg = json.loads((tmp_path / "map.ddg.json").read_text())
    assert ddg["reads"] and ddg["mods"]

    dot = (tmp_path / "map.ddg.dot").read_text()
    assert dot.startswith('digraph "map"')

    events = (tmp_path / "map.events.jsonl").read_text().splitlines()
    kinds = {json.loads(line)["kind"] for line in events}
    assert {"mod-create", "read-start", "write", "propagate-end"} <= kinds


def test_trace_format_json_only(tmp_path, capsys):
    rc = main(["trace", "filter", "-n", "8", "--out", str(tmp_path),
               "--format", "json"])
    assert rc == 0
    assert (tmp_path / "filter.ddg.json").exists()
    assert not (tmp_path / "filter.ddg.dot").exists()
    assert not (tmp_path / "filter.events.jsonl").exists()


def test_trace_unknown_app(capsys):
    assert main(["trace", "nosuchapp"]) == 1
    assert "unknown app" in capsys.readouterr().err


def test_trace_no_check_skips_invariants(tmp_path, capsys):
    rc = main(["trace", "map", "-n", "8", "--out", str(tmp_path), "--no-check"])
    assert rc == 0
    assert "invariants" not in capsys.readouterr().out


@pytest.mark.parametrize("backend", ["interp", "compiled", "stack"])
def test_profile_reports_phases_and_engine_stats(capsys, backend):
    rc = main(
        ["profile", "msort", "-n", "16", "--changes", "2",
         "--backend", backend, "--top", "3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # Per-phase rows ...
    for phase in ("compile", "input marshal", "initial run",
                  "propagate x2", "readback"):
        assert phase in out
    # ... relabel and queue statistics ...
    assert "relabels=" in out
    assert "queue:" in out and "rekeys=" in out and "drained=" in out
    assert "intern:" in out
    # ... and the cProfile call-site section.
    assert "top call sites" in out


def test_profile_no_callsites_and_events(capsys):
    rc = main(["profile", "filter", "-n", "8", "--changes", "1",
               "--no-callsites", "--events"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "top call sites" not in out
    assert "events[propagate x1]:" in out


def test_profile_unknown_app(capsys):
    assert main(["profile", "nosuchapp"]) == 1
    assert "unknown app" in capsys.readouterr().err
