"""Change-propagation engine tests (repro.sac.engine)."""

import pytest

from repro.sac import Engine
from repro.sac.exceptions import (
    PropagationError,
    ReadOutsideModError,
    UnwrittenModError,
)
from repro.sac.modifiable import Modifiable


def square_chain(engine, m):
    """out = (m*m) built with one mod and one read."""
    return engine.mod(lambda dest: engine.read(m, lambda v: engine.write(dest, v * v)))


def test_initial_run_and_peek():
    engine = Engine()
    m = engine.make_input(3)
    out = square_chain(engine, m)
    assert out.peek() == 9


def test_change_propagate_updates_output():
    engine = Engine()
    m = engine.make_input(3)
    out = square_chain(engine, m)
    engine.change(m, 5)
    n = engine.propagate()
    assert n == 1
    assert out.peek() == 25


def test_change_to_equal_value_is_noop():
    engine = Engine()
    m = engine.make_input(3)
    square_chain(engine, m)
    engine.change(m, 3)
    assert engine.propagate() == 0


def test_write_cutoff_stops_propagation():
    """A re-executed write of an equal value must not dirty downstream."""
    engine = Engine()
    m = engine.make_input(3)
    absval = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, abs(v)))
    )
    downstream = engine.mod(
        lambda dest: engine.read(absval, lambda v: engine.write(dest, v + 1))
    )
    engine.change(m, -3)  # |.| unchanged
    n = engine.propagate()
    assert n == 1  # only the abs read re-executes
    assert downstream.peek() == 4


def test_chain_propagates_through_dependencies():
    engine = Engine()
    m = engine.make_input(1)
    mods = [m]
    for _ in range(10):
        prev = mods[-1]
        mods.append(
            engine.mod(
                lambda dest, prev=prev: engine.read(
                    prev, lambda v: engine.write(dest, v + 1)
                )
            )
        )
    assert mods[-1].peek() == 11
    engine.change(m, 100)
    assert engine.propagate() == 10
    assert mods[-1].peek() == 110


def test_two_readers_both_update():
    engine = Engine()
    m = engine.make_input(2)
    doubled = square_chain(engine, m)
    tripled = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, 3 * v))
    )
    engine.change(m, 10)
    assert engine.propagate() == 2
    assert doubled.peek() == 100
    assert tripled.peek() == 30


def test_diamond_dependency_single_reexecution_per_edge():
    engine = Engine()
    m = engine.make_input(1)
    left = engine.mod(lambda d: engine.read(m, lambda v: engine.write(d, v + 1)))
    right = engine.mod(lambda d: engine.read(m, lambda v: engine.write(d, v * 2)))
    join = engine.mod(
        lambda d: engine.read(
            left, lambda a: engine.read(right, lambda b: engine.write(d, a + b))
        )
    )
    assert join.peek() == 4
    engine.change(m, 10)
    engine.propagate()
    assert join.peek() == 31


def test_read_outside_mod_raises():
    engine = Engine()
    m = engine.make_input(1)
    with pytest.raises(ReadOutsideModError):
        engine.read(m, lambda v: None)


def test_unwritten_mod_raises():
    engine = Engine()
    with pytest.raises(UnwrittenModError):
        engine.mod(lambda dest: None)


def test_read_of_unwritten_raises():
    engine = Engine()
    empty = Modifiable()
    with pytest.raises(UnwrittenModError):
        engine.mod(lambda dest: engine.read(empty, lambda v: engine.write(dest, v)))


def test_propagate_not_reentrant():
    engine = Engine()
    m = engine.make_input(1)
    saw_reentrancy_error = []

    def reader_factory(dest):
        def reader(v):
            if engine.propagating:
                try:
                    engine.propagate()
                except PropagationError:
                    saw_reentrancy_error.append(True)
            engine.write(dest, v)

        return reader

    engine.mod(lambda dest: engine.read(m, reader_factory(dest)))
    engine.change(m, 2)
    engine.propagate()
    assert saw_reentrancy_error == [True]


def test_nested_reads_inner_change_only_reruns_inner():
    engine = Engine()
    a = engine.make_input(1)
    b = engine.make_input(2)
    calls = {"outer": 0, "inner": 0}

    def comp(dest):
        def on_a(av):
            calls["outer"] += 1

            def on_b(bv):
                calls["inner"] += 1
                engine.write(dest, av + bv)

            engine.read(b, on_b)

        engine.read(a, on_a)

    out = engine.mod(comp)
    assert out.peek() == 3
    engine.change(b, 10)
    engine.propagate()
    assert out.peek() == 11
    assert calls == {"outer": 1, "inner": 2}


def test_outer_change_discards_inner_edge():
    engine = Engine()
    a = engine.make_input(1)
    b = engine.make_input(2)

    def comp(dest):
        engine.read(a, lambda av: engine.read(b, lambda bv: engine.write(dest, av + bv)))

    out = engine.mod(comp)
    engine.change(a, 5)
    engine.propagate()
    assert out.peek() == 7
    # After the outer re-run, exactly one live edge reads b.
    live_b_edges = [e for e in b.readers if not e.dead]
    assert len(live_b_edges) == 1


def test_impwrite_initial_run_then_change():
    engine = Engine()
    cell = engine.make_input(0)
    engine.impwrite(cell, 41)
    out = engine.mod(
        lambda dest: engine.read(cell, lambda v: engine.write(dest, v + 1))
    )
    assert out.peek() == 42
    engine.impwrite(cell, 99)
    engine.propagate()
    assert out.peek() == 100


def test_lift_coercion():
    engine = Engine()
    a = engine.make_input(3)
    b = engine.make_input(4)
    out = engine.lift(lambda x, y: x * y, a, b)
    assert out.peek() == 12
    engine.change(a, 5)
    engine.propagate()
    assert out.peek() == 20


def test_read2_and_read_list():
    engine = Engine()
    a = engine.make_input(1)
    b = engine.make_input(2)
    c = engine.make_input(3)
    out = engine.mod(
        lambda dest: engine.read_list([a, b, c], lambda vs: engine.write(dest, sum(vs)))
    )
    pair = engine.mod(
        lambda dest: engine.read2(a, b, lambda x, y: engine.write(dest, (x, y)))
    )
    assert out.peek() == 6
    assert pair.peek() == (1, 2)
    engine.change(b, 20)
    engine.propagate()
    assert out.peek() == 24
    assert pair.peek() == (1, 20)


def test_meter_counts():
    engine = Engine()
    m = engine.make_input(1)
    square_chain(engine, m)
    assert engine.meter.mods_created == 2
    assert engine.meter.reads_executed == 1
    assert engine.meter.writes == 1
    engine.change(m, 2)
    engine.propagate()
    assert engine.meter.edges_reexecuted == 1


def test_trace_size_shrinks_after_cutoff():
    """Discarded trace segments release their stamps."""
    engine = Engine()
    m = engine.make_input(1)
    downstream = engine.mod(
        lambda d: engine.read(
            m,
            lambda v: (
                engine.read(engine.make_input(v), lambda w: engine.write(d, w))
            ),
        )
    )
    size_before = engine.trace_size()
    engine.change(m, 2)
    engine.propagate()
    # Old inner trace replaced by a same-shape new one: size stable.
    assert abs(engine.trace_size() - size_before) <= 2
    assert downstream.peek() == 2


def test_keyed_mod_recycles_identity_across_reexecution():
    """keyed_mod reuses the modifiable allocated under the same key when
    the old allocation site is being discarded, so equal re-writes cut
    propagation off (the AFL 'unsafe interface', paper Section 4.9)."""
    engine = Engine()
    x = engine.make_input(1)
    allocated = []

    def computation(dest):
        def on_x(v):
            inner = engine.keyed_mod(
                "stable-cell", lambda d: engine.write(d, v > 0)
            )
            allocated.append(inner)
            engine.write(dest, inner)

        engine.read(x, on_x)

    out = engine.mod(computation)
    first = out.peek()
    assert first.peek() is True
    engine.change(x, 5)  # sign unchanged: inner contents equal
    engine.propagate()
    assert out.peek() is first  # same identity recycled
    downstream_dirty = [e for e in first.readers if e.dirty]
    assert not downstream_dirty


def test_keyed_mod_fresh_when_key_live_elsewhere():
    engine = Engine()
    a = engine.keyed_mod("k", lambda d: engine.write(d, 1))
    b = engine.keyed_mod("k", lambda d: engine.write(d, 2))
    # The first allocation is still live and outside any reuse zone, so a
    # fresh modifiable must be used.
    assert a is not b
    assert a.peek() == 1 and b.peek() == 2


def test_keyed_mod_requires_write():
    engine = Engine()
    with pytest.raises(UnwrittenModError):
        engine.keyed_mod("k2", lambda d: None)


# ----------------------------------------------------------------------
# Write-cutoff value equality (_values_equal)
#
# The cutoff must be *type-sensitive*: Python's == conflates True == 1 ==
# 1.0 and 0.0 == -0.0, and a suppressed write of a value that only
# compares equal would leave the trace recording the wrong value (and the
# wrong type) for every downstream read.


def test_values_equal_distinguishes_bool_int_float():
    from repro.sac.engine import _values_equal

    assert not _values_equal(True, 1)
    assert not _values_equal(1, 1.0)
    assert not _values_equal(False, 0)
    assert _values_equal(1, 1)
    assert _values_equal(True, True)


def test_values_equal_float_edge_cases():
    from repro.sac.engine import _values_equal

    nan = float("nan")
    assert _values_equal(nan, nan)  # equal *for cutoff purposes*
    assert _values_equal(nan, float("nan"))
    assert not _values_equal(nan, 1.0)
    assert not _values_equal(0.0, -0.0)  # distinguishable (copysign, repr)
    assert _values_equal(0.0, 0.0)
    assert _values_equal(-0.0, -0.0)
    assert _values_equal(2.5, 2.5)


def test_values_equal_tuples_recurse():
    from repro.sac.engine import _values_equal

    nan = float("nan")
    assert _values_equal((1, (2, nan)), (1, (2, nan)))
    assert not _values_equal((1, 2), (1, 2, 3))
    assert not _values_equal((1, (2, 0.0)), (1, (2, -0.0)))
    assert not _values_equal((True,), (1,))
    assert not _values_equal((1, 2), [1, 2])  # tuple vs list


def test_values_equal_tuples_of_modifiables_by_identity():
    from repro.sac.engine import _values_equal

    engine = Engine()
    a = engine.make_input(1)
    b = engine.make_input(1)
    assert _values_equal((a, a), (a, a))
    # Distinct modifiables are distinct locations even with equal contents.
    assert not _values_equal((a,), (b,))


def test_values_equal_constructor_values():
    from repro.interp.values import ConValue
    from repro.sac.engine import _values_equal

    engine = Engine()
    tail = engine.make_input(None)
    assert _values_equal(ConValue("Nil", None), ConValue("Nil", None))
    assert not _values_equal(ConValue("Nil", None), ConValue("Cons", None))
    assert _values_equal(ConValue("Cons", (5, tail)), ConValue("Cons", (5, tail)))
    # Type sensitivity must reach through constructor arguments.
    assert not _values_equal(ConValue("Cons", (1, tail)), ConValue("Cons", (True, tail)))
    assert not _values_equal(ConValue("Cons", (0.0, tail)), ConValue("Cons", (-0.0, tail)))


def test_values_equal_incomparable_objects():
    from repro.sac.engine import _values_equal

    class Grumpy:
        def __eq__(self, other):
            raise RuntimeError("no comparisons, please")

        __hash__ = None

    g = Grumpy()
    assert _values_equal(g, g)  # identity short-circuits
    assert not _values_equal(g, Grumpy())  # comparison failure => not equal


def test_write_cutoff_is_type_sensitive():
    """Overwriting True with 1 must propagate: they print differently and
    behave differently under string formatting, so suppressing the write
    would freeze downstream reads at the stale value."""
    engine = Engine()
    m = engine.make_input(0)
    out = engine.mod(
        lambda dest: engine.read(m, lambda v: engine.write(dest, v == 0))
    )
    shown = engine.mod(
        lambda dest: engine.read(out, lambda v: engine.write(dest, repr(v)))
    )
    assert shown.peek() == "True"
    engine.change(m, 7)
    assert engine.propagate() >= 1
    assert shown.peek() == "False"


def test_write_cutoff_nan_write_does_not_cascade():
    """Re-writing NaN over NaN is a cutoff: downstream must not re-execute."""
    engine = Engine()
    m = engine.make_input(-1.0)
    nanned = engine.mod(
        lambda dest: engine.read(
            m, lambda v: engine.write(dest, float("nan") if v < 0 else v)
        )
    )
    reexec_count = [0]

    def downstream_reader(v):
        reexec_count[0] += 1

    engine.mod(
        lambda dest: engine.read(
            nanned, lambda v: (downstream_reader(v), engine.write(dest, 0))[-1]
        )
    )
    assert reexec_count[0] == 1
    engine.change(m, -2.0)  # still negative: nanned stays NaN
    engine.propagate()
    assert reexec_count[0] == 1  # cutoff held; downstream untouched
