"""The unified host API (repro.api.Session) and the deprecation shims.

Covers every construction form, the run/edit/propagate/stats surface, the
single backend-resolution path, propagation budgets and deadlines with
resumption, batch coalescing (and its observability events), and the
DeprecationWarning behaviour of every superseded entry point.
"""

import pytest

from repro.api import (
    PropagateStats,
    PropagationBudgetExceeded,
    Session,
    verify_app,
)
from repro.apps import REGISTRY
from repro.core.pipeline import compile_program
from repro.interp.values import list_value_to_python
from repro.obs import EventLog
from repro.sac.engine import Engine

SQUARES = """
datatype cell = Nil | Cons of int * cell $C

fun squares l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h * h, squares t)

val main : cell $C -> cell $C = squares
"""


# ----------------------------------------------------------------------
# Construction forms


def test_session_from_source():
    session = Session(SQUARES)
    xs = session.input_list([1, 2, 3])
    assert list_value_to_python(session.run(xs.head)) == [1, 4, 9]


def test_session_from_registry_name():
    session = Session("map")
    assert session.app is REGISTRY["map"]
    out = session.run(data=[3, 1, 2])
    assert session.app.readback(out) == REGISTRY["map"].reference([3, 1, 2])


def test_session_from_app_object():
    app = REGISTRY["filter"]
    session = Session(app)
    out = session.run(data=[1, 2, 3, 4, 5, 6])
    assert session.app.readback(out) == app.reference([1, 2, 3, 4, 5, 6])


def test_session_from_compiled_program():
    program = compile_program(SQUARES)
    session = Session(program)
    assert session.program is program
    xs = session.input_list([2])
    assert list_value_to_python(session.run(xs.head)) == [4]


def test_session_rejects_compiler_options_for_compiled_program():
    program = compile_program(SQUARES)
    with pytest.raises(ValueError):
        Session(program, optimize=False)


def test_session_compiler_options_forwarded():
    session = Session("map", optimize=False, memoize=False)
    assert session.options.optimize is False
    assert session.options.memoize is False


def test_session_shared_engine():
    engine = Engine()
    a = Session(SQUARES, engine=engine)
    b = Session("map", engine=engine)
    assert a.engine is b.engine is engine


def test_session_run_requires_input():
    with pytest.raises(ValueError):
        Session(SQUARES).run()


def test_session_data_requires_app():
    with pytest.raises(ValueError):
        Session(SQUARES).run(data=[1, 2])


# ----------------------------------------------------------------------
# Backend resolution (the single path)


def test_session_backend_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "compiled")
    assert Session("map", backend="interp").backend == "interp"
    assert Session("map").backend == "compiled"
    monkeypatch.delenv("REPRO_BACKEND")
    assert Session("map").backend == "interp"


def test_session_backends_agree():
    outs = []
    for backend in ("interp", "compiled", "stack"):
        session = Session("msort", backend=backend)
        out = session.run(data=[4, 2, 7, 1])
        outs.append(session.app.readback(out))
    assert outs[0] == outs[1] == [1, 2, 4, 7]


# ----------------------------------------------------------------------
# Edits, propagation, stats


def test_edit_returns_dirtied_count_and_propagate_reports_stats():
    session = Session(SQUARES)
    xs = session.input_list([1, 2, 3])
    out = session.run(xs.head)
    # One read edge observes each cell: editing a cell dirties one read.
    assert session.edit(xs.mods[1], xs.mods[1].peek()) == 0  # equal: cutoff
    assert xs.set(1, 10) == 1
    stats = session.propagate()
    assert isinstance(stats, PropagateStats)
    assert stats.reexecuted == 1
    assert stats.drained >= stats.reexecuted
    assert stats.seconds >= 0.0
    assert "re-executed" in str(stats)
    assert list_value_to_python(out) == [1, 100, 9]


def test_session_stats_shape():
    session = Session("map", backend="interp")
    session.run(data=[1, 2, 3])
    session.input_handle.insert(0, 9)
    session.propagate()
    stats = session.stats()
    assert stats["backend"] == "interp"
    assert stats["options"] == {"memoize": True, "optimize": True, "coarse": False}
    assert stats["propagations"] == 1
    assert stats["trace_size"] == session.engine.trace_size() > 0
    assert stats["tables"]["memo_entries"] >= 0
    assert stats["meter"]["reads_executed"] > 0


def test_prepare_then_run():
    session = Session("map")
    session.prepare([5, 6])
    assert session.input_handle is not None
    out = session.run()
    assert session.app.readback(out) == REGISTRY["map"].reference([5, 6])


# ----------------------------------------------------------------------
# Budgets and deadlines


def test_propagate_budget_raises_and_resumes():
    session = Session(SQUARES)
    xs = session.input_list(list(range(8)))
    out = session.run(xs.head)
    for i in range(4):
        xs.set(i, 100 + i)
    with pytest.raises(PropagationBudgetExceeded) as info:
        session.propagate(budget=2)
    assert info.value.reexecuted == 2
    assert info.value.pending > 0
    # The trace is consistent; a later propagate finishes the work.
    stats = session.propagate()
    assert stats.reexecuted == 2
    assert list_value_to_python(out) == [
        x * x for x in [100, 101, 102, 103, 4, 5, 6, 7]
    ]


def test_propagate_deadline_zero_raises():
    session = Session(SQUARES)
    xs = session.input_list([1, 2, 3])
    session.run(xs.head)
    xs.set(0, 9)
    with pytest.raises(PropagationBudgetExceeded):
        session.propagate(deadline=0.0)
    session.propagate()  # resumes cleanly


def test_batch_budget_forwarded():
    session = Session(SQUARES)
    xs = session.input_list(list(range(6)))
    session.run(xs.head)
    with pytest.raises(PropagationBudgetExceeded):
        with session.batch(budget=1):
            xs.set(0, 50)
            xs.set(3, 60)
    session.propagate()
    assert xs.to_python() == [50, 1, 2, 60, 4, 5]


# ----------------------------------------------------------------------
# Batching: coalescing and events


def test_batch_coalesces_and_emits_events():
    log = EventLog()
    session = Session(SQUARES, hook=log)
    xs = session.input_list([1, 2, 3])
    out = session.run(xs.head)
    with session.batch() as batch:
        xs.set(0, 10)
        xs.set(0, 20)  # same cell twice: one re-execution
    assert batch.changed == 2
    assert batch.reexecuted == 1
    assert list_value_to_python(out) == [400, 4, 9]
    begins = log.of_kind("batch-begin")
    ends = log.of_kind("batch-end")
    assert len(begins) == len(ends) == 1
    assert ends[0].info == {"changed": 2, "reexecuted": 1}
    assert session.engine.meter.batches == 1


def test_change_many():
    from repro.interp.values import ConValue

    session = Session(SQUARES)
    xs = session.input_list([1, 2, 3])
    out = session.run(xs.head)

    def cell(index, value):
        return ConValue("Cons", (value, xs.mods[index].peek().arg[1]))

    reexecuted = session.engine.change_many(
        [(xs.mods[0], cell(0, 5)), (xs.mods[2], cell(2, 7))]
    )
    assert reexecuted == 2
    assert list_value_to_python(out) == [25, 4, 49]


def test_trace_compact_event_and_stats():
    log = EventLog()
    session = Session("map", hook=log)
    session.run(data=list(range(16)))
    for step in range(8):
        session.input_handle.insert(0, 100 + step)
        session.propagate()
        session.input_handle.remove(0)
        session.propagate()
    removed = session.compact()
    assert removed["memo"] >= 0 and removed["alloc"] >= 0
    assert log.of_kind("trace-compact")
    assert session.engine.meter.compactions >= 1


# ----------------------------------------------------------------------
# VerifyResult reports drained and re-executed separately


def test_verify_result_reports_drained():
    result = verify_app("map", n=16, changes=6, seed=2)
    assert result.drained_total >= result.reexecuted_total > 0
    assert "queue entries drained" in str(result)


def test_verify_app_batched_matches_sequential():
    sequential = verify_app("map", n=20, changes=8, seed=7)
    batched = verify_app("map", n=20, changes=8, seed=7, batch=4)
    assert sequential.changes == batched.changes == 8


# ----------------------------------------------------------------------
# Removed deprecation shims stay removed


def test_deprecation_shims_are_gone():
    import repro.core.pipeline as pipeline

    program = compile_program(SQUARES)
    assert not hasattr(program, "self_adjusting_instance")
    assert not hasattr(pipeline, "default_backend")
