"""From-scratch-consistency oracle tests (repro.api.oracle_app).

The consistency theorems of self-adjusting computation state that change
propagation produces the state a from-scratch run on the changed input
would produce.  These tests check exactly that property -- propagated
output versus a fresh self-adjusting rerun, with the trace invariant
checker riding along -- across the listops apps, over 200+ seeded random
list / change-sequence cases, under every combination of the compiler's
``optimize`` and ``memoize`` flags.
"""

import pytest

from repro.apps import REGISTRY
from repro.api import VerificationError, oracle_app

APPS = ["filter", "map", "reverse", "msort"]
CONFIGS = [
    pytest.param(True, True, id="opt+memo"),
    pytest.param(True, False, id="opt-nomemo"),
    pytest.param(False, True, id="noopt+memo"),
    pytest.param(False, False, id="noopt-nomemo"),
]
SEEDS = range(13)  # 4 apps x 4 configs x 13 seeds = 208 cases


@pytest.mark.parametrize("optimize_flag,memoize", CONFIGS)
@pytest.mark.parametrize("app_name", APPS)
def test_oracle_consistency_random_changes(app_name, optimize_flag, memoize):
    app = REGISTRY[app_name]
    for seed in SEEDS:
        n = 4 + (seed * 7) % 12  # vary the input size with the seed
        result = oracle_app(
            app,
            n=n,
            changes=3,
            seed=seed,
            memoize=memoize,
            optimize_flag=optimize_flag,
            check_invariants=True,
        )
        assert result.changes == 3
        # The invariant checker really ran: at least one full-trace check
        # per propagation.
        assert result.invariant_checks >= 3


def test_oracle_larger_runs_with_memoization():
    """A longer change sequence at a larger size, memoized (the config the
    paper evaluates)."""
    for name in APPS:
        result = oracle_app(REGISTRY[name], n=24, changes=10, seed=99)
        assert result.reexecuted_total > 0


def test_oracle_empty_input():
    """Change sequences starting from the empty list (inserts only)."""
    for name in APPS:
        oracle_app(REGISTRY[name], n=0, changes=4, seed=3)


def test_oracle_detects_divergence():
    """A broken app (reference disagreeing with the program) must be
    reported, proving the oracle is not vacuous."""
    import dataclasses

    app = REGISTRY["map"]
    broken = dataclasses.replace(app, reference=lambda xs: [0] * len(xs))
    broken._cache.update(app._cache)  # share compilations
    with pytest.raises(VerificationError):
        oracle_app(broken, n=8, changes=2, seed=0)


def test_oracle_coarse_mode():
    """The CPS-emulation (coarse) configuration also propagates
    consistently."""
    oracle_app(REGISTRY["map"], n=12, changes=4, seed=1, coarse=True)
