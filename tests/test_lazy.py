"""Demand-driven (lazy) propagation: differential grid, metamorphic
properties, and regression pins.

Lazy mode (``Session(mode="lazy")`` / ``Engine(mode="lazy")``) replaces
the eager drain-everything discipline with *suspect marking* at edit time
and a restricted drain at demand time: only dirty reads whose destination
chain feeds the demanded modifiable re-execute.  The correctness contract
is threefold, and each part gets its own section here:

1. **Differential**: for every registered app, on both backends, a lazy
   session demanding its output after each change produces exactly the
   eager session's outputs and the from-scratch oracle's outputs.
2. **Metamorphic / meter-exact**: a burst of edits followed by one demand
   equals per-edit eager propagation; a second demand of the same output
   re-executes *nothing* (meter deltas are zero); dirty work in a cone
   nobody demands runs zero user code.
3. **Regression**: the suspect-clearing bug class -- a mod that both
   feeds the demanded target and retains a second, deferred dirty feeder
   must stay suspect, or a later demand fast-paths a stale value.  Pinned
   at the exact msort scenario that exposed it and at unit scale.
"""

import random

import pytest

from repro.api import Session, oracle_app, values_close, verify_app
from repro.apps import REGISTRY
from repro.obs.invariants import InvariantChecker, check_trace
from repro.sac.engine import Engine
from repro.sac.exceptions import PropagationBudgetExceeded, PropagationError

BACKENDS = ["interp", "compiled", "stack"]

#: Same shape as test_backends_differential.APP_SIZES: per-app input size
#: and change count, small because the grid runs every app twice per test.
APP_SIZES = {
    "map": (16, 6),
    "filter": (16, 6),
    "reverse": (16, 6),
    "split": (16, 6),
    "qsort": (16, 6),
    "msort": (16, 6),
    "vec-reduce": (16, 6),
    "vec-mult": (16, 6),
    "mat-vec-mult": (6, 4),
    "mat-add": (6, 4),
    "transpose": (6, 4),
    "mat-mult": (4, 4),
    "block-mat-mult": (8, 3),
    "raytracer": (4, 2),
}

#: A representative subset for the more expensive property tests: list
#: apps with real sharing (msort's keyed spine, qsort's partitions), a
#: cutoff-heavy app (filter), and a matrix app (tuple-structured output).
PROPERTY_APPS = ["filter", "qsort", "msort", "vec-mult", "mat-add"]


# ----------------------------------------------------------------------
# 1. The differential grid


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(APP_SIZES))
def test_lazy_consistent_with_from_scratch(name, backend):
    """Per change: demand the full output, compare against a fresh
    session on the current data and the reference function, with the
    invariant checker (including the suspicion-closure check) riding
    along."""
    n, changes = APP_SIZES[name]
    oracle_app(name, n, changes, mode="lazy", backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(APP_SIZES))
def test_lazy_matches_eager_stepwise(name, backend):
    """Twin sessions, identical change streams: after every change the
    lazy session's demanded output equals the eager session's propagated
    output."""
    app = REGISTRY[name]
    n, changes = APP_SIZES[name]
    rng_e, rng_l = random.Random(11), random.Random(11)
    eager = Session(app, backend=backend)
    lazy = Session(app, backend=backend, mode="lazy")
    out_e = eager.run(data=app.make_data(n, rng_e))
    out_l = lazy.run(data=app.make_data(n, rng_l))
    assert values_close(app.readback(out_e), app.readback(out_l))
    for step in range(changes):
        app.apply_change(eager.input_handle, rng_e, step)
        app.apply_change(lazy.input_handle, rng_l, step)
        eager.propagate()
        stats = lazy.demand()
        assert stats.path == "demand"
        assert values_close(app.readback(out_e), app.readback(out_l)), (
            f"{name} [{backend}]: lazy output diverges from eager "
            f"after change {step}"
        )


@pytest.mark.parametrize("name", PROPERTY_APPS)
def test_lazy_meter_parity_between_backends(name):
    """Both backends call the engine identically, so a lazy trail's meter
    snapshots (including the demand counters) must be identical too."""
    n, changes = APP_SIZES[name]

    def trail(backend):
        app = REGISTRY[name]
        rng = random.Random(5)
        session = Session(app, backend=backend, mode="lazy")
        out = session.run(data=app.make_data(n, rng))
        snaps = [session.engine.meter.snapshot()]
        for step in range(changes):
            app.apply_change(session.input_handle, rng, step)
            session.demand()
            snaps.append((app.readback(out), session.engine.meter.snapshot()))
        return snaps

    assert trail("interp") == trail("compiled")


def test_verify_app_lazy_mode():
    result = verify_app("msort", 16, 6, mode="lazy")
    assert result.changes == 6


# ----------------------------------------------------------------------
# 2. Metamorphic properties and meter-exact laziness


@pytest.mark.parametrize("name", PROPERTY_APPS)
def test_demand_after_edit_burst_matches_eager(name):
    """N edits then ONE demand == N alternating edit/propagate rounds."""
    app = REGISTRY[name]
    n, changes = APP_SIZES[name]
    rng_e, rng_l = random.Random(23), random.Random(23)
    eager = Session(app)
    lazy = Session(app, mode="lazy")
    out_e = eager.run(data=app.make_data(n, rng_e))
    out_l = lazy.run(data=app.make_data(n, rng_l))
    for step in range(changes):
        app.apply_change(eager.input_handle, rng_e, step)
        eager.propagate()
        app.apply_change(lazy.input_handle, rng_l, step)
    lazy.demand()
    assert values_close(app.readback(out_e), app.readback(out_l))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", PROPERTY_APPS)
def test_second_demand_is_free(name, backend):
    """Demanding an already-demanded output does zero propagation work:
    no re-executions, no queue drains, every walked mod already clean."""
    app = REGISTRY[name]
    n, changes = APP_SIZES[name]
    rng = random.Random(3)
    session = Session(app, backend=backend, mode="lazy")
    session.run(data=app.make_data(n, rng))
    for step in range(changes):
        app.apply_change(session.input_handle, rng, step)
    session.demand()

    meter = session.engine.meter
    before = meter.snapshot()
    stats = session.demand()
    after = meter.snapshot()
    assert stats.reexecuted == 0
    assert stats.drained == 0
    assert stats.skipped_clean == stats.demanded
    assert after["edges_reexecuted"] == before["edges_reexecuted"]
    assert after["queue_drained"] == before["queue_drained"]
    assert (
        after["demands_clean"] - before["demands_clean"] == stats.demanded
    )


def _cone(engine, source, label, calls):
    """One modifiable computed from ``source``; counts reader runs."""

    def comp(dest):
        def reader(v):
            calls[label] = calls.get(label, 0) + 1
            engine.write(dest, v * 10)

        engine.read(source, reader)

    return engine.mod(comp)


def test_undemanded_cone_does_zero_work():
    """Two independent cones; demanding one must not run the other's
    reader, and its dirty edge stays queued and suspect for later."""
    engine = Engine(mode="lazy")
    calls = {}
    x1, x2 = engine.make_input(1), engine.make_input(2)
    y1 = _cone(engine, x1, "y1", calls)
    y2 = _cone(engine, x2, "y2", calls)
    engine.change(x1, 5)
    engine.change(x2, 7)

    assert engine.demand(y1) == 50
    assert calls == {"y1": 2, "y2": 1}  # y2 ran only in the initial run
    assert len(engine.queue) == 1  # y2's edge deferred, not dropped
    assert engine.meter.demand_deferred >= 1
    assert y2.suspect and not y1.suspect
    check_trace(engine)  # closure invariant holds mid-laziness

    assert engine.demand(y2) == 70
    assert calls["y2"] == 2
    assert not engine.queue
    check_trace(engine, expect_empty_queue=True)


def test_demand_counters_stay_zero_on_eager_engines():
    engine = Engine()
    m = engine.make_input(3)
    engine.change(m, 4)
    engine.propagate()
    snap = engine.meter.snapshot()
    assert snap["demands"] == 0
    assert snap["demands_clean"] == 0
    assert snap["suspect_marks"] == 0
    assert snap["demand_deferred"] == 0


def test_demand_requires_lazy_engine_and_session():
    engine = Engine()
    m = engine.make_input(1)
    with pytest.raises(PropagationError):
        engine.demand(m)
    with pytest.raises(ValueError):
        Session("map").demand()
    with pytest.raises(ValueError):
        Session("map", engine=Engine(), mode="lazy")
    with pytest.raises(ValueError):
        Session("map", mode="sometimes")
    # batch > 1 under lazy mode is supported: the batch stages, the
    # following demand drains (see test_lazy_batch_* below).
    verify_app("map", 8, 2, mode="lazy", batch=2)


def test_session_adopts_engine_mode():
    lazy_engine = Engine(mode="lazy")
    session = Session("map", engine=lazy_engine)
    assert session.mode == "lazy"


def test_session_get_peeks_in_eager_mode():
    session = Session("map")
    rng = random.Random(0)
    out = session.run(data=session.app.make_data(8, rng))
    assert session.get(out) is out.peek()


def test_full_propagate_clears_all_suspicion():
    engine = Engine(mode="lazy")
    calls = {}
    x = engine.make_input(1)
    y = _cone(engine, x, "y", calls)
    engine.change(x, 2)
    assert y.suspect
    engine.propagate()
    assert not y.suspect
    assert not engine._suspect_mods
    assert engine.demand(y) == 20
    assert engine.meter.demands_clean == 1


# ----------------------------------------------------------------------
# 3. Regressions: the suspect-clearing bug class


def test_sibling_cone_stays_suspect_after_partial_demand():
    """Regression (exact scenario): msort, 16 elements, 4 random edits,
    then a full-output demand.  Demanding the head cells first used to
    clear suspicion -- via the feeds-True verdicts -- on tail cells that
    were *also* fed by a dirty edge deferred as irrelevant to the head,
    so the tail cells served stale values.  The suspect set must instead
    be recomputed from what is still queued."""
    app = REGISTRY["msort"]
    session = Session(app, mode="lazy", hook=InvariantChecker())
    out = session.run(data=app.make_data(16, random.Random(0)))
    rng = random.Random(1)
    for step in range(4):
        app.apply_change(session.input_handle, rng, step)
    session.demand()
    got = app.readback(out)
    expected = app.reference(app.handle_data(session.input_handle))
    assert got == expected, f"stale cell served: {got} != {expected}"
    # And nothing is left half-marked: a second demand is free...
    stats = session.demand()
    assert stats.reexecuted == 0 and stats.skipped_clean == stats.demanded
    # ...while any genuinely deferred work still satisfies the closure
    # invariant (check_trace validates it for lazy engines).
    check_trace(session.engine)


def test_mod_feeding_target_with_second_dirty_feeder_stays_suspect():
    """Unit-scale pin of the same class: ``top`` reads both ``left`` and
    ``right``.  Demand ``left`` (relevant cone only); ``top`` feeds
    ``left``'s demand nothing, but it must STAY suspect because
    ``right``'s edit is still queued -- otherwise demanding ``top`` next
    would fast-path a stale sum."""
    engine = Engine(mode="lazy")
    xl, xr = engine.make_input(1), engine.make_input(100)
    calls = {}
    left = _cone(engine, xl, "left", calls)
    right = _cone(engine, xr, "right", calls)

    def top_comp(dest):
        def read_left(lv):
            engine.read(right, lambda rv: engine.write(dest, lv + rv))

        engine.read(left, read_left)

    top = engine.mod(top_comp)
    assert top.value == 1010

    engine.change(xl, 2)
    engine.change(xr, 200)
    assert engine.demand(left) == 20
    # right's edit was irrelevant to left's cone and stayed queued; every
    # mod it transitively feeds (right, top) must still be suspect.
    assert right.suspect and top.suspect
    assert engine.demand(top) == 2020
    assert not engine.queue
    check_trace(engine, expect_empty_queue=True)


def test_write_cutoff_clears_remarked_node_on_demand():
    """Clean-but-remarked: an edit marks the whole chain suspect, the
    re-execution write cuts off (equal value), so nothing above actually
    re-runs -- and the demand must *unmark* the chain rather than leave
    it permanently suspect (or worse, serve a stale value later)."""
    engine = Engine(mode="lazy")
    x = engine.make_input(5)

    def abs_comp(dest):
        engine.read(x, lambda v: engine.write(dest, abs(v)))

    y = engine.mod(abs_comp)
    calls = {}
    top = _cone(engine, y, "top", calls)
    assert engine.demand(top) == 50
    assert calls["top"] == 1

    engine.change(x, -5)  # |x| unchanged: the write will cut off
    assert top.suspect
    assert engine.demand(top) == 50
    assert calls["top"] == 1  # cutoff: top's reader never re-ran
    assert not top.suspect and not y.suspect  # suspicion fully recomputed
    check_trace(engine, expect_empty_queue=True)

    # A->B->A editing: values must track every flip, including back.
    engine.change(x, -7)
    assert engine.demand(top) == 70
    engine.change(x, 5)
    assert engine.demand(top) == 50
    assert calls["top"] == 3
    check_trace(engine, expect_empty_queue=True)


def test_budget_interrupted_demand_keeps_suspicion_and_resumes():
    """An interrupted demand must leave every suspect bit set: clearing
    on the abort path would let the *next* demand fast-path a value the
    interrupted walk never got to recompute."""
    engine = Engine(mode="lazy")
    x = engine.make_input(1)

    def mid_comp(dest):
        engine.read(x, lambda v: engine.write(dest, v + 1))

    mid = engine.mod(mid_comp)
    calls = {}
    top = _cone(engine, mid, "top", calls)
    assert engine.demand(top) == 20

    engine.change(x, 10)
    with pytest.raises(PropagationBudgetExceeded):
        engine.demand(top, budget=1)  # two re-executions needed
    assert top.suspect  # interruption may not clear anything
    assert engine.demand(top) == 110  # resumes and completes
    assert not top.suspect
    check_trace(engine, expect_empty_queue=True)


def test_imperative_write_degrades_demand_to_propagate():
    """In-run ``impwrite`` can dirty reads outside any destination cone,
    so a demand on such an engine must flush everything (still correct,
    no longer lazy) -- including cones nobody demanded."""
    engine = Engine(mode="lazy")
    x = engine.make_input(1)
    calls = {}
    other_x = engine.make_input(5)
    other = _cone(engine, other_x, "other", calls)

    def comp(dest):
        engine.read(x, lambda v: engine.impwrite(dest, v + 1))

    y = engine.mod(comp)
    assert engine._has_imperative
    engine.change(x, 10)
    engine.change(other_x, 6)
    assert engine.demand(y) == 11
    assert not engine.queue  # full propagation: other's cone flushed too
    assert calls["other"] == 2
    check_trace(engine, expect_empty_queue=True)


def test_deep_demand_burst_converges_on_shared_feeders():
    """32-edit burst at n=128: ``Session.demand`` must iterate its value
    walk to a fixpoint.  Demanding a later output cell re-executes merge
    feeders *shared* with earlier cells and can re-dirty a cell the walk
    already visited clean; a single pass over the value grammar is not a
    consistency proof."""
    app = REGISTRY["msort"]
    rng_e, rng_l = random.Random(3), random.Random(3)
    eager = Session(app)
    lazy = Session(app, mode="lazy")
    out_e = eager.run(data=app.make_data(128, rng_e))
    out_l = lazy.run(data=app.make_data(128, rng_l))
    for step in range(32):
        app.apply_change(eager.input_handle, rng_e, step)
        eager.propagate()
        app.apply_change(lazy.input_handle, rng_l, step)
    lazy.demand()
    assert values_close(app.readback(out_e), app.readback(out_l))
    again = lazy.demand()
    assert again.reexecuted == 0 and again.drained == 0
    check_trace(lazy.engine)


def test_get_is_a_shallow_force():
    """``Session.get`` forces ONE modifiable (Adapton-style): the value
    it returns is consistent, but inner cells it points to may stay lazy
    until demanded themselves -- ``Session.demand`` catches them up."""
    app = REGISTRY["msort"]
    rng = random.Random(3)
    session = Session(app, mode="lazy")
    output = session.run(data=app.make_data(64, rng))
    for step in range(16):
        app.apply_change(session.input_handle, rng, step)
    head = session.get(output)
    assert head is not None
    assert not output.suspect  # the forced cell itself is consistent
    check_trace(session.engine)  # ... and the trace is sound mid-laziness
    session.demand()  # deep walk: now the whole output is current
    assert not session.engine.queue or all(
        e.dead for _, _, e in session.engine.queue
    )


def test_demand_unwinds_stale_reads_outside_the_cone():
    """Regression: a demand drain must never let a re-executed reader
    follow possibly-stale structure outside the relevance cone.

    Before the hazard check this exact scenario -- msort, a 16-edit
    burst, then one head-only force -- sent a re-executed reader into a
    stale *cyclic* list left behind by ``keyed_mod`` identity recycling
    in a deferred region, and the reader recursed to the interpreter
    limit (a multi-minute ``RecursionReexecutionError``).  ``Engine.read``
    now refuses such reads; the drain unwinds the edge transactionally,
    widens the cone, and retries in timestamp order.  Pin that the hazard
    path actually runs here, that it is metered, and that the result
    still matches the eager oracle exactly.
    """
    app = REGISTRY["msort"]
    rng_e, rng_l = random.Random(3), random.Random(3)
    eager = Session(app)
    lazy = Session(app, mode="lazy")
    out_e = eager.run(data=app.make_data(64, rng_e))
    out_l = lazy.run(data=app.make_data(64, rng_l))
    for step in range(16):
        app.apply_change(eager.input_handle, rng_e, step)
        eager.propagate()
        app.apply_change(lazy.input_handle, rng_l, step)
    lazy.get(out_l)
    # The widen-and-retry path must have fired -- this pins the scenario
    # as a live reproducer, not a vacuous pass.
    assert lazy.engine.meter.demand_hazards > 0
    check_trace(lazy.engine)  # every unwind left the trace whole
    lazy.demand()
    assert values_close(app.readback(out_e), app.readback(out_l))


# ----------------------------------------------------------------------
# 4. Multi-target demand and lazy batches (the server-facing surface)


def test_multi_target_demand_returns_values_in_order():
    engine = Engine(mode="lazy")
    calls = {}
    x1, x2 = engine.make_input(1), engine.make_input(2)
    y1 = _cone(engine, x1, "y1", calls)
    y2 = _cone(engine, x2, "y2", calls)
    engine.change(x1, 5)
    engine.change(x2, 7)
    assert engine.demand([y2, y1]) == [70, 50]
    assert not engine.queue
    # Single-target form still returns the bare value.
    assert engine.demand(y1) == 50
    with pytest.raises(PropagationError):
        engine.demand([])


def test_multi_target_demand_serves_clean_targets_for_free():
    engine = Engine(mode="lazy")
    calls = {}
    x1, x2 = engine.make_input(1), engine.make_input(2)
    y1 = _cone(engine, x1, "y1", calls)
    y2 = _cone(engine, x2, "y2", calls)
    engine.change(x1, 5)  # only y1's cone goes suspect
    before = engine.meter.snapshot()
    assert engine.demand([y1, y2]) == [50, 20]
    after = engine.meter.snapshot()
    assert after["demands"] - before["demands"] == 2
    assert after["demands_clean"] - before["demands_clean"] == 1
    assert calls["y2"] == 1  # never re-ran


def test_multi_target_demand_leaves_undemanded_cone_suspect():
    """A multi-target drain is still relevance-filtered: cones feeding
    neither target stay dirty, queued, and suspect."""
    engine = Engine(mode="lazy")
    calls = {}
    xs = [engine.make_input(i) for i in range(3)]
    ys = [_cone(engine, x, f"y{i}", calls) for i, x in enumerate(xs)]
    for x in xs:
        engine.change(x, 100)
    assert engine.demand([ys[0], ys[1]]) == [1000, 1000]
    assert ys[2].suspect
    assert len(engine.queue) == 1
    check_trace(engine)


def test_one_drain_at_most_sum_of_per_target_drains():
    """Meter pin: demanding k targets in one drain re-executes (and
    drains) no more than k separate per-target demands on an identical
    twin engine -- shared feeders re-run once, not once per target."""

    def build(engine, calls):
        src = engine.make_input(1)
        shared = _cone(engine, src, "shared", calls)
        outs = [_cone(engine, shared, f"out{i}", calls) for i in range(4)]
        return src, outs

    calls_multi, calls_single = {}, {}
    multi, single = Engine(mode="lazy"), Engine(mode="lazy")
    src_m, outs_m = build(multi, calls_multi)
    src_s, outs_s = build(single, calls_single)
    multi.change(src_m, 7)
    single.change(src_s, 7)

    values_multi = multi.demand(outs_m)
    values_single = [single.demand(o) for o in outs_s]
    assert values_multi == values_single == [700] * 4

    snap_multi = multi.meter.snapshot()
    snap_single = single.meter.snapshot()
    assert (
        snap_multi["edges_reexecuted"] <= snap_single["edges_reexecuted"]
    )
    assert snap_multi["queue_drained"] <= snap_single["queue_drained"]
    # And the win is real on this shape: every reader once, exactly.
    assert calls_multi == {
        "shared": 2,
        "out0": 2,
        "out1": 2,
        "out2": 2,
        "out3": 2,
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_session_demand_list_of_handles(backend):
    """Session.demand accepts handle strings and lists; one drain serves
    the whole read batch and matches the reference."""
    from repro.apps.vectors import tree_sum

    app = REGISTRY["vec-reduce"]
    rng = random.Random(11)
    session = Session(app, backend=backend, mode="lazy")
    out = session.run(data=app.make_data(16, rng))
    out_handle = session.handle(out, "out")
    cell0 = session.handle(session.input_handle.mods[0], "cell:0")
    session.edit("cell:0", 2.5)
    stats = session.demand([out_handle, cell0])
    assert stats.path == "demand"
    data = app.handle_data(session.input_handle)
    assert values_close(session.get("out"), tree_sum(data))
    assert session.get(cell0) == 2.5


def test_lazy_batch_defers_the_drain():
    """A batch scope under mode="lazy" stages without propagating: the
    scope's reexecuted count is 0 and the queue keeps the edits until
    the next demand."""
    engine = Engine(mode="lazy")
    calls = {}
    x = engine.make_input(1)
    y = _cone(engine, x, "y", calls)
    with engine.batch() as b:
        engine.change(x, 2)
        engine.change(x, 3)
    assert b.changed == 2
    assert b.reexecuted == 0
    assert engine.queue  # still staged
    assert y.suspect
    assert engine.demand(y) == 30
    assert calls["y"] == 2  # once initially, once for the whole batch


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", PROPERTY_APPS)
def test_lazy_batched_matches_eager_batched_and_scratch(name, backend):
    """Differential pin for the lifted restriction: lazy-batched ==
    eager-batched == from-scratch, batch by batch."""
    app = REGISTRY[name]
    n, changes = APP_SIZES[name]
    rng_e, rng_l = random.Random(29), random.Random(29)
    eager = Session(app, backend=backend)
    lazy = Session(app, backend=backend, mode="lazy")
    out_e = eager.run(data=app.make_data(n, rng_e))
    out_l = lazy.run(data=app.make_data(n, rng_l))
    step = 0
    for _round in range(3):
        with eager.batch():
            for _ in range(4):
                app.apply_change(eager.input_handle, rng_e, step)
                step += 1
        step -= 4
        with lazy.batch() as b:
            for _ in range(4):
                app.apply_change(lazy.input_handle, rng_l, step)
                step += 1
        assert b.reexecuted == 0
        lazy.demand()
        got_e = app.readback(out_e)
        got_l = app.readback(out_l)
        assert values_close(got_e, got_l)
        scratch = app.reference(app.handle_data(lazy.input_handle))
        assert values_close(got_l, scratch)


def test_verify_app_lazy_batched():
    """verify_app's own lazy+batch path oracle-checks every batch."""
    for name in ("map", "msort", "vec-reduce"):
        n, changes = APP_SIZES[name]
        verify_app(name, n, changes, mode="lazy", batch=3)
