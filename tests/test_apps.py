"""Benchmark-application correctness (the paper's Section 4.3 protocol).

Each app: conventional output == reference, initial self-adjusting output
== reference, and output stays equal to the reference after every one of a
series of random incremental changes.
"""

import pytest

from repro.apps import REGISTRY, get_app
from repro.api import Session, verify_app

LIST_APPS = ["map", "filter", "split", "qsort", "msort"]
VECTOR_APPS = ["vec-reduce", "vec-mult"]


@pytest.mark.parametrize("name", LIST_APPS)
def test_list_apps_verify(name):
    result = verify_app(REGISTRY[name], n=40, changes=14, seed=11)
    assert result.changes == 14


@pytest.mark.parametrize("name", VECTOR_APPS)
def test_vector_apps_verify(name):
    verify_app(REGISTRY[name], n=40, changes=14, seed=12)


def test_mat_vec_mult_verifies():
    verify_app(REGISTRY["mat-vec-mult"], n=8, changes=10, seed=13)


def test_mat_add_verifies():
    verify_app(REGISTRY["mat-add"], n=8, changes=10, seed=14)


def test_transpose_verifies_and_is_free():
    result = verify_app(REGISTRY["transpose"], n=8, changes=10, seed=15)
    # Transpose only shuffles modifiable pointers: no reads ever re-execute.
    assert result.reexecuted_total == 0


def test_mat_mult_verifies():
    verify_app(REGISTRY["mat-mult"], n=6, changes=8, seed=16)


def test_block_mat_mult_verifies():
    verify_app(REGISTRY["block-mat-mult"], n=16, changes=6, seed=17)


def test_block_mat_mult_other_block_size():
    app = get_app("block-mat-mult", block=4)
    verify_app(app, n=8, changes=6, seed=18)


def test_raytracer_verifies():
    verify_app(REGISTRY["raytracer"], n=6, changes=3, seed=19)


@pytest.mark.parametrize("name", ["map", "qsort"])
def test_unoptimized_variant_verifies(name):
    verify_app(REGISTRY[name], n=24, changes=8, seed=20, optimize_flag=False)


@pytest.mark.parametrize("name", ["map", "filter"])
def test_coarse_variant_verifies(name):
    verify_app(
        REGISTRY[name], n=24, changes=8, seed=21,
        optimize_flag=False, coarse=True,
    )


def test_unmemoized_variant_verifies():
    verify_app(REGISTRY["map"], n=20, changes=6, seed=22, memoize=False)


def test_map_propagation_is_constant_work():
    import random

    app = REGISTRY["map"]
    rng = random.Random(0)
    session = Session(app)
    engine = session.engine
    session.run(data=app.make_data(400, rng))
    before = engine.meter.reads_executed
    for step in range(10):
        app.apply_change(session.input_handle, rng, step)
        session.propagate()
    # ~1 read per insert/delete, independent of n.
    assert engine.meter.reads_executed - before <= 20


def test_msort_speedup_grows_with_input_size():
    """Change propagation beats recomputation by a factor that grows with
    n (the paper's Figure 6 trend).

    Note the known deviation recorded in EXPERIMENTS.md: our merge's memo
    keys pair both input suffixes, so identity disturbances at exhaustion
    boundaries re-key output suffixes and propagation work grows ~linearly
    (with a small constant) rather than polylogarithmically; the paper's
    AFL substrate stabilizes this with keyed destination allocation.  The
    speedup (run work / propagation work) still grows with n.
    """
    import random

    app = REGISTRY["msort"]

    def run_vs_prop(n):
        rng = random.Random(5)
        session = Session(app)
        engine = session.engine
        session.run(data=app.make_data(n, rng))
        run_reads = engine.meter.reads_executed
        before = engine.meter.reads_executed
        for step in range(8):
            app.apply_change(session.input_handle, rng, step)
            session.propagate()
        prop_reads = (engine.meter.reads_executed - before) / 8
        return run_reads / prop_reads

    small, large = run_vs_prop(64), run_vs_prop(512)
    assert large > 1.5 * small
    assert large > 4  # propagation is much cheaper than re-running
