"""Demand-driven propagation: work scales with what you look at.

Eager propagation makes every output consistent after every edit -- even
outputs nobody reads.  ``mode="lazy"`` flips the discipline: edits only
mark suspicion up the dependency graph, and a read (``Session.get`` /
``Engine.demand``) re-executes just the dirty subgraph feeding the value
actually demanded.  Everything else stays queued until someone asks.

Part 1 shows the mechanism on two independent dataflow cones built with
the raw runtime; part 2 shows the payoff on msort under the
many-edits-one-read regime (the regime `benchmarks/bench_lazy_demand.py`
pins at >=10x).

Run:  python examples/lazy_demand.py
"""

import random
import time

from repro import Session
from repro.apps import REGISTRY
from repro.sac import Engine


def two_cones() -> None:
    """Two outputs, one demand: the undemanded cone does zero work."""
    engine = Engine(mode="lazy")
    runs = {"left": 0, "right": 0}

    def cone(source, label):
        def compute(dest):
            def reader(v):
                runs[label] += 1
                engine.write(dest, v * 10)

            engine.read(source, reader)

        return engine.mod(compute)

    x_left, x_right = engine.make_input(1), engine.make_input(2)
    y_left = cone(x_left, "left")
    y_right = cone(x_right, "right")

    engine.change(x_left, 5)
    engine.change(x_right, 7)

    print("edit both inputs, demand only the left output:")
    print("  demand(y_left) =", engine.demand(y_left))
    print("  reader runs:", dict(runs), "(right ran only in the initial run)")
    print(
        f"  {len(engine.queue)} dirty edge(s) still queued, "
        f"y_right.suspect={y_right.suspect}"
    )

    print("demand the right output later; it catches up on its own:")
    print("  demand(y_right) =", engine.demand(y_right))
    print("  reader runs:", dict(runs), "-- queue now empty:", not engine.queue)
    print()


def many_edits_one_read(n: int = 128, edits: int = 32) -> None:
    """msort: 32 edits then one head read, eager vs lazy."""
    app = REGISTRY["msort"]

    def run(mode):
        rng = random.Random(3)
        session = Session(app, mode=mode)
        output = session.run(data=app.make_data(n, rng))
        started = time.perf_counter()
        for step in range(edits):
            app.apply_change(session.input_handle, rng, step)
            if mode == "eager":
                session.propagate()  # eager: consistent after EVERY edit
        head = session.get(output)  # lazy: the one head demand happens here
        elapsed = time.perf_counter() - started
        assert head is not None
        return session, output, elapsed

    _, eager_out, eager_s = run("eager")
    session, lazy_out, lazy_s = run("lazy")

    print(f"msort n={n}, {edits} edits, then read the head cell:")
    print(f"  eager: {eager_s:.4f}s  ({edits} full propagations)")
    print(f"  lazy:  {lazy_s:.4f}s  (suspicion marking + 1 head demand)")
    print(f"  -> {eager_s / lazy_s:.1f}x in the lazy mode's favour")

    # ``get`` is a *shallow* force, like Adapton's: the returned value is
    # consistent but may contain still-lazy inner cells.  ``demand()``
    # walks the whole output to a fixpoint before a deep readback.
    stats = session.demand()
    print("  catching the rest of the output up:", stats)
    assert app.readback(eager_out) == app.readback(lazy_out)


def main() -> None:
    two_cones()
    many_edits_one_read()


if __name__ == "__main__":
    main()
