"""Using the self-adjusting runtime directly from Python.

The compiler's target library (repro.sac) is a complete self-adjusting
computation runtime in its own right -- the analogue of the AFL combinator
library the paper compares against (Section 4.9).  This example builds a
small spreadsheet: cells are input modifiables, formulas are ``mod``/
``read``/``write`` combinators, and edits recompute exactly the dependent
formulas.

Run:  python examples/spreadsheet.py
"""

from repro.sac import Engine


class Spreadsheet:
    """Cells with values or formulas over other cells."""

    def __init__(self) -> None:
        self.engine = Engine()
        self.cells = {}
        self.evaluations = 0

    def set_value(self, name: str, value) -> None:
        if name in self.cells:
            self.engine.change(self.cells[name], value)
            self.engine.propagate()
        else:
            self.cells[name] = self.engine.make_input(value)

    def update(self, **changes) -> int:
        """Apply several edits as ONE batch: formulas depending on more
        than one edited cell recompute once, not once per edit.  Returns
        the number of formula evaluations the batch cost."""
        before = self.evaluations
        with self.engine.batch():
            for name, value in changes.items():
                self.engine.change(self.cells[name], value)
        return self.evaluations - before

    def set_formula(self, name: str, inputs, fn) -> None:
        """``name`` = fn(values of inputs), recomputed incrementally."""
        engine = self.engine
        deps = [self.cells[i] for i in inputs]

        def compute(dest):
            def on_values(values):
                self.evaluations += 1
                engine.write(dest, fn(*values))

            engine.read_list(deps, on_values)

        self.cells[name] = engine.mod(compute)

    def __getitem__(self, name: str):
        return self.cells[name].peek()


def main() -> None:
    sheet = Spreadsheet()

    # A little order form.
    for row, (qty, price) in enumerate(
        [(2, 9.99), (1, 249.00), (5, 1.50)], start=1
    ):
        sheet.set_value(f"qty{row}", qty)
        sheet.set_value(f"price{row}", price)
        sheet.set_formula(
            f"line{row}", [f"qty{row}", f"price{row}"], lambda q, p: q * p
        )
    sheet.set_formula(
        "subtotal", ["line1", "line2", "line3"], lambda a, b, c: a + b + c
    )
    sheet.set_value("tax_rate", 0.08)
    sheet.set_formula("tax", ["subtotal", "tax_rate"], lambda s, r: s * r)
    sheet.set_formula("total", ["subtotal", "tax"], lambda s, t: s + t)

    print(f"subtotal = {sheet['subtotal']:8.2f}")
    print(f"tax      = {sheet['tax']:8.2f}")
    print(f"total    = {sheet['total']:8.2f}")
    initial_evals = sheet.evaluations
    print(f"(initial run evaluated {initial_evals} formulas)")

    print("\nedit: qty2 = 3")
    sheet.set_value("qty2", 3)
    print(f"total    = {sheet['total']:8.2f}")
    print(
        f"(recomputed {sheet.evaluations - initial_evals} formulas: "
        "line2, subtotal, tax, total -- line1 and line3 were reused)"
    )

    evals = sheet.evaluations
    print("\nedit: tax_rate = 0.10")
    sheet.set_value("tax_rate", 0.10)
    print(f"total    = {sheet['total']:8.2f}")
    print(
        f"(recomputed {sheet.evaluations - evals} formulas: tax and total "
        "-- the line items and subtotal were untouched)"
    )

    print("\nbatched edit: qty1 = 4, qty3 = 2, price3 = 1.25")
    cost = sheet.update(qty1=4, qty3=2, price3=1.25)
    print(f"total    = {sheet['total']:8.2f}")
    print(
        f"(one batch, {cost} formula evaluations -- subtotal, tax, and "
        "total each recomputed ONCE, not once per edited cell)"
    )
    # Three sequential edits would have re-run subtotal/tax/total three
    # times each; the batch coalesces the three dirtyings into one pass.
    assert cost == 5  # line1, line3, subtotal, tax, total


if __name__ == "__main__":
    main()
