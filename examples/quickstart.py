"""Quickstart: compile one annotation into an incremental program.

The paper's promise (Section 1): take conventional code, add a ``$C`` type
annotation saying what may change, and the compiler produces a program
that responds to changes automatically and efficiently.

Here: an ordinary list-processing function over a list whose *tails* are
changeable (so elements can be inserted and deleted).  After the initial
run, each insertion updates the output by re-executing O(1) reads instead
of re-running the whole computation.

Run:  python examples/quickstart.py
"""

from repro import compile_program
from repro.interp.marshal import ModListInput
from repro.interp.values import list_value_to_python

SOURCE = """
datatype cell = Nil | Cons of int * cell $C

fun squares l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h * h, squares t)

val main : cell $C -> cell $C = squares
"""


def main() -> None:
    program = compile_program(SOURCE)

    print("=== the self-adjusting code the compiler generated ===")
    print(program.dump_translated())
    print()

    # Initial (complete) run: builds the trace.
    instance = program.self_adjusting_instance()
    numbers = ModListInput(instance.engine, [1, 2, 3, 4, 5])
    output = instance.apply(numbers.head)
    print("squares of", numbers.to_python(), "=", list_value_to_python(output))

    def change(description, fn):
        meter = instance.engine.meter
        before = meter.edges_reexecuted + meter.reads_executed
        fn()
        instance.propagate()
        work = meter.edges_reexecuted + meter.reads_executed - before
        print(
            f"after {description}: {list_value_to_python(output)} "
            f"({work} read(s) of work)"
        )

    change("inserting 10", lambda: numbers.insert(2, 10))
    change("deleting the head", lambda: numbers.delete(0))

    # The same work, grown 100x, still costs O(1) reads per change.
    big = ModListInput(instance.engine, list(range(500)))
    big_out = instance.apply(big.head)
    meter = instance.engine.meter
    before = meter.edges_reexecuted + meter.reads_executed
    big.insert(250, 999)
    instance.propagate()
    work = meter.edges_reexecuted + meter.reads_executed - before
    assert list_value_to_python(big_out) == [x * x for x in big.to_python()]
    print(f"on a 500-element list, one insert cost {work} read(s) of work")


if __name__ == "__main__":
    main()
