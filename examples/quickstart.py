"""Quickstart: compile one annotation into an incremental program.

The paper's promise (Section 1): take conventional code, add a ``$C`` type
annotation saying what may change, and the compiler produces a program
that responds to changes automatically and efficiently.

Here: an ordinary list-processing function over a list whose *tails* are
changeable (so elements can be inserted and deleted), driven through the
unified :class:`repro.api.Session` API.  After the initial run, each
insertion updates the output by re-executing O(1) reads instead of
re-running the whole computation -- and a *batch* of edits coalesces into
a single propagation pass.

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.interp.values import list_value_to_python

SOURCE = """
datatype cell = Nil | Cons of int * cell $C

fun squares l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h * h, squares t)

val main : cell $C -> cell $C = squares
"""


def main() -> None:
    session = Session(SOURCE)

    print("=== the self-adjusting code the compiler generated ===")
    print(session.program.dump_translated())
    print()

    # Initial (complete) run: builds the trace.
    numbers = session.input_list([1, 2, 3, 4, 5])
    output = session.run(numbers.head)
    print("squares of", numbers.to_python(), "=", list_value_to_python(output))

    def change(description, fn):
        fn()
        stats = session.propagate()
        print(
            f"after {description}: {list_value_to_python(output)} "
            f"({stats.reexecuted} read(s) of work)"
        )

    change("inserting 10", lambda: numbers.insert(2, 10))
    change("removing the head", lambda: numbers.remove(0))

    # Several edits at once: a batch coalesces them into ONE propagation
    # pass, so a read observing multiple edited inputs re-runs only once.
    with session.batch() as batch:
        numbers.insert(0, 7)
        numbers.set(1, 20)
    print(
        f"after a 2-edit batch: {list_value_to_python(output)} "
        f"({batch.changed} edits -> {batch.reexecuted} read(s) of work)"
    )

    # The same work, grown 100x, still costs O(1) reads per change.
    big = session.input_list(list(range(500)))
    big_out = session.run(big.head)
    big.insert(250, 999)
    stats = session.propagate()
    assert list_value_to_python(big_out) == [x * x for x in big.to_python()]
    print(f"on a 500-element list, one insert cost {stats.reexecuted} read(s) of work")

    summary = session.stats()
    print(
        f"session: backend={summary['backend']}, "
        f"{summary['propagations']} propagations, "
        f"trace size {summary['trace_size']}"
    )


if __name__ == "__main__":
    main()
