"""A spreadsheet *service*: many documents, one incremental server.

``examples/spreadsheet.py`` builds one spreadsheet on one engine.  This
example runs the multi-tenant version: a :class:`repro.server.SessionPool`
hosts one incremental session per client document inside a single asyncio
process, reachable over the newline-delimited JSON frame protocol.  N
concurrent clients each open their own vec-reduce sheet (a column of
cells folded to a total), fire random cell edits and reads, and every
sheet's final total is checked against the from-scratch oracle
(``tree_sum`` over the sheet's current data).

Along the way one unlucky sheet has a fault planted in its engine
mid-propagation -- the pool rolls just that document back (re-staging its
edits) while every other sheet keeps serving, which is the whole point
of per-session containment.

Run:  python examples/spreadsheet_service.py
"""

import asyncio
import random

from repro.api import values_close
from repro.apps.vectors import tree_sum
from repro.obs.faults import FaultInjector
from repro.server import Client, SessionPool, serve

CLIENTS = 8
CELLS = 32
EDITS = 12


async def spreadsheet_client(host: str, port: int, idx: int) -> tuple:
    """One tenant: open a sheet, edit cells, occasionally read the total."""
    client = await Client.connect(host, port)
    doc = f"sheet-{idx}"
    info = await client.open(doc, app="vec-reduce", n=CELLS, seed=idx)
    assert info["cells"] == CELLS

    rng = random.Random(100 + idx)
    reads = 0
    for _ in range(EDITS):
        cell = f"cell:{rng.randrange(CELLS)}"
        await client.edit(doc, cell, round(rng.uniform(-5, 5), 2))
        if rng.random() < 0.4:
            await client.get(doc, "out")  # demand just this sheet's total
            reads += 1

    total = await client.get(doc, "out")
    stats = await client.stats(doc)
    await client.close()
    return doc, total, stats, reads


async def main() -> None:
    pool = SessionPool(mode="lazy", slice_budget=64, on_error="rollback")
    server = await serve(pool)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"spreadsheet service on {host}:{port} -- {CLIENTS} tenants\n")

    tasks = [
        asyncio.create_task(spreadsheet_client(host, port, i))
        for i in range(CLIENTS)
    ]
    # Once the sheets exist, sabotage one of them: the next propagation
    # over sheet-3 will blow up partway through a read.
    while "sheet-3" not in pool.docs:
        await asyncio.sleep(0)
    pool.docs["sheet-3"].session.engine.attach_hook(
        FaultInjector("read", at=2, during="propagate")
    )

    results = await asyncio.gather(*tasks)

    print(f"{'sheet':<10} {'total':>12} {'edits':>6} {'reads':>6} "
          f"{'rollbacks':>10} {'oracle':>8}")
    for doc, total, stats, reads in sorted(results):
        session = pool.docs[doc].session
        expected = tree_sum(session.app.handle_data(session.input_handle))
        ok = values_close(total, expected)
        assert ok, f"{doc} diverged from its oracle"
        print(
            f"{doc:<10} {total:>12.2f} {stats['edits']:>6} {reads:>6} "
            f"{stats['rollbacks']:>10} {'ok':>8}"
        )

    snap = pool.stats()
    victim = pool.docs["sheet-3"]
    print(
        f"\npool: {snap['documents']} documents, {snap['failed']} failed; "
        f"sheet-3 recovered via {victim.rollbacks} rollback(s) "
        f"+ {victim.rebuilds} rebuild(s), siblings untouched"
    )
    assert snap["failed"] == 0
    assert victim.rollbacks + victim.rebuilds >= 1

    server.close()
    await server.wait_closed()
    await pool.stop()


if __name__ == "__main__":
    asyncio.run(main())
