"""Incremental ray tracing (paper Section 4.7, Figure 8).

Renders the paper-shaped scene (3 lights, a ground plane, 18 spheres in
surface groups A..G), then reproduces Figure 8's experiment: the four
green balls (group A) flip between diffuse and mirrored surfaces, and
change propagation re-renders only the affected pixels.

Writes ``raytracer_before.ppm`` and ``raytracer_after.ppm`` next to this
script (plain PPM; any image viewer opens them).

Run:  python examples/raytracer_demo.py
"""

import os
import time

from repro.api import Session
from repro.apps import REGISTRY
from repro.apps.raytracer import (
    SceneInput,
    image_diff_fraction,
    mirror_surface,
    readback_image,
    standard_scene,
)

SIZE = 32


def write_ppm(path: str, image) -> None:
    with open(path, "wb") as fh:
        fh.write(f"P6 {len(image[0])} {len(image)} 255\n".encode())
        for row in image:
            for r, g, b in row:
                fh.write(
                    bytes(
                        min(255, max(0, int(c * 255))) for c in (r, g, b)
                    )
                )


def main() -> None:
    here = os.path.dirname(os.path.abspath(__file__))
    app = REGISTRY["raytracer"]
    print(f"compiling the LML ray tracer ...")
    program = app.compiled()

    scene = standard_scene(SIZE)
    sa = Session(program)
    handle = SceneInput(sa.engine, scene)

    print(f"rendering {SIZE}x{SIZE} (initial self-adjusting run) ...")
    start = time.perf_counter()
    output = sa.run(handle.value)
    run_time = time.perf_counter() - start
    before = readback_image(output)
    write_ppm(os.path.join(here, "raytracer_before.ppm"), before)
    print(f"  complete run: {run_time:.2f}s -> raytracer_before.ppm")

    # Figure 8: flip the green balls (group A) between diffuse and
    # mirrored.  (They start mirrored in the standard scene, so the first
    # toggle makes them diffuse, the second restores the mirrors.)
    for _ in range(2):
        kind = handle.toggle("A")
        print(f"changing group A's surface (the green balls) to {kind} ...")
        start = time.perf_counter()
        sa.propagate()
        prop_time = time.perf_counter() - start
        after = readback_image(output)
        frac = image_diff_fraction(before, after)
        before = after
        print(f"  change propagation: {prop_time:.2f}s")
        print(f"  pixels changed: {frac * 100:.1f}%")
        print(f"  speedup over re-rendering: {run_time / prop_time:.1f}x")
    write_ppm(os.path.join(here, "raytracer_after.ppm"), after)
    print("  wrote raytracer_after.ppm (mirrored green balls, Figure 8)")

    # A smaller change is proportionally cheaper.
    print("changing group G (two far spheres) back and forth ...")
    start = time.perf_counter()
    handle.toggle("G")
    sa.propagate()
    small_prop = time.perf_counter() - start
    print(
        f"  propagation: {small_prop:.3f}s "
        f"({run_time / small_prop:.0f}x faster than re-rendering)"
    )


if __name__ == "__main__":
    main()
