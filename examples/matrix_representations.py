"""Choosing incremental granularity with a type annotation (paper Sec. 2).

The paper's central demonstration: the *same* matrix-multiplication code,
with different ``$C`` placements in the type declarations, yields
incremental programs with different cost profiles:

* ``((real $C) vector) vector`` -- every element individually changeable:
  expensive complete runs (a modifiable per scalar product) but very fast
  responses to single-element changes;
* blocked -- whole sub-matrices changeable: cheap complete runs (one
  modifiable per block) but coarser updates.

No code changes -- only the type annotations (and the input marshalling
that follows them) differ.

Run:  python examples/matrix_representations.py
"""

import random
import time

from repro.api import Session
from repro.apps.matrices import BLOCK_MAT_MULT_SOURCE, MAT_MULT_SOURCE
from repro.core import compile_program
from repro.interp.marshal import BlockMatrixInput, ModMatrixInput

N = 16
BLOCK = 8


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:<38} {elapsed * 1e3:9.2f} ms")
    return result, elapsed


def main() -> None:
    rng = random.Random(0)
    rows_a = [[0.5 + rng.random() for _ in range(N)] for _ in range(N)]
    rows_b = [[0.5 + rng.random() for _ in range(N)] for _ in range(N)]

    print(f"multiplying two {N}x{N} matrices, then changing one element\n")

    print("element-granular: type matrix = ((real $C) vector) vector")
    program = compile_program(MAT_MULT_SOURCE)
    sa = Session(program)
    a = ModMatrixInput(sa.engine, rows_a)
    b = ModMatrixInput(sa.engine, rows_b)
    _, run_elem = timed("complete run", lambda: sa.run((a.value, b.value)))
    mods_elem = sa.engine.meter.mods_created

    def change_elem():
        a.set(3, 4, 2.0)
        sa.propagate()

    _, prop_elem = timed("propagate one element change", change_elem)

    print(f"  modifiables created: {mods_elem}")
    print()

    print(f"block-granular: {BLOCK}x{BLOCK} blocks, one modifiable per block")
    program_b = compile_program(BLOCK_MAT_MULT_SOURCE)
    sa_b = Session(program_b)
    ba = BlockMatrixInput(sa_b.engine, rows_a, BLOCK)
    bb = BlockMatrixInput(sa_b.engine, rows_b, BLOCK)
    _, run_block = timed(
        "complete run", lambda: sa_b.run((ba.value, bb.value, BLOCK))
    )
    mods_block = sa_b.engine.meter.mods_created

    def change_block():
        ba.set(3, 4, 2.0)
        sa_b.propagate()

    _, prop_block = timed("propagate one element change", change_block)
    print(f"  modifiables created: {mods_block}")
    print()

    print("the paper's trade-off (Sections 2.4 and 4.6):")
    print(
        f"  tracking granularity: {mods_elem} vs {mods_block} modifiables "
        f"({mods_elem / mods_block:.0f}x fewer when blocked)"
    )
    print(
        f"  response to a single element change: {prop_elem * 1e3:.2f} ms vs "
        f"{prop_block * 1e3:.2f} ms (finer tracking responds faster)"
    )


if __name__ == "__main__":
    main()
